// Lifecycle races of the sharded delivery engine: concurrent
// AddNode/Send/SetSink, Shutdown with packets in flight on every shard,
// and sinks that re-send while a drain barrier is waiting. Run under the
// tsan preset (GUARDIANS_SANITIZE=thread) via the "tsan" ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/net/network.h"

namespace guardians {
namespace {

Packet MakePacket(NodeId src, NodeId dst, uint64_t id, size_t size = 16) {
  Packet p;
  p.msg_id = id;
  p.src = src;
  p.dst = dst;
  p.payload = Bytes(size, static_cast<uint8_t>(id));
  p.Seal();
  return p;
}

TEST(NetworkLifecycleTest, ConcurrentAddNodeSendAndSetSink) {
  Network network(11, nullptr, nullptr, /*shards=*/4);
  network.SetDefaultLink(LinkParams{Micros(50), Micros(0), 0, 0, 0});
  std::atomic<uint64_t> delivered{0};
  constexpr int kSeedNodes = 4;
  for (int i = 0; i < kSeedNodes; ++i) {
    const NodeId id = network.AddNode("seed" + std::to_string(i));
    network.SetSink(id, [&](Packet&&) { delivered.fetch_add(1); });
  }

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        switch (i % 8) {
          case 0: {
            // Grow the node set while traffic flows.
            const NodeId id = network.AddNode("t" + std::to_string(t) + "n" +
                                              std::to_string(i));
            network.SetSink(id, [&](Packet&&) { delivered.fetch_add(1); });
            break;
          }
          case 1:
            // Replace a sink that delivery workers may be reading.
            network.SetSink(1 + (i % kSeedNodes),
                            [&](Packet&&) { delivered.fetch_add(1); });
            break;
          default: {
            const NodeId dst =
                static_cast<NodeId>(1 + (t * kOpsPerThread + i) %
                                            network.node_count());
            network.Send(MakePacket(1 + (i % kSeedNodes), dst,
                                    static_cast<uint64_t>(i)));
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  network.DrainForTesting();

  // Every accepted packet resolved exactly once: delivered or counted as a
  // drop — nothing lost to the engine itself, nothing double-counted.
  const NetworkStats stats = network.stats();
  EXPECT_EQ(stats.packets_delivered + stats.packets_dropped,
            stats.packets_sent);
  EXPECT_EQ(delivered.load(), stats.packets_delivered);
}

TEST(NetworkLifecycleTest, ShutdownWithPacketsInFlightOnEveryShard) {
  constexpr size_t kShards = 4;
  Network network(13, nullptr, nullptr, kShards);
  std::atomic<bool> shutdown_returned{false};
  std::atomic<int> sink_after_shutdown{0};
  constexpr int kNodes = 8;  // every shard owns two destinations
  for (int i = 0; i < kNodes; ++i) {
    const NodeId id = network.AddNode("n" + std::to_string(i));
    network.SetSink(id, [&](Packet&&) {
      if (shutdown_returned.load()) {
        sink_after_shutdown.fetch_add(1);
      }
    });
  }
  // Long latency: the packets are still queued on their shards' timing
  // heaps when Shutdown runs.
  network.SetDefaultLink(LinkParams{Millis(200), Micros(0), 0, 0, 0});
  for (int i = 0; i < kNodes; ++i) {
    for (int m = 0; m < 8; ++m) {
      network.Send(MakePacket(1, static_cast<NodeId>(1 + i),
                              static_cast<uint64_t>(i * 100 + m)));
    }
  }
  network.Shutdown();
  shutdown_returned.store(true);
  // "No sink runs after Shutdown returns" — give a straggler a chance to
  // prove us wrong before asserting.
  std::this_thread::sleep_for(Millis(250));
  EXPECT_EQ(sink_after_shutdown.load(), 0);
  // Drain after shutdown must not hang on the abandoned packets.
  network.DrainForTesting();
}

TEST(NetworkLifecycleTest, ConcurrentSendsDuringShutdown) {
  Network network(17, nullptr, nullptr, /*shards=*/3);
  network.SetDefaultLink(LinkParams{Micros(20), Micros(0), 0, 0, 0});
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  network.SetSink(b, [](Packet&&) {});

  std::atomic<bool> stop{false};
  std::vector<std::thread> senders;
  for (int t = 0; t < 3; ++t) {
    senders.emplace_back([&] {
      uint64_t id = 0;
      while (!stop.load()) {
        network.Send(MakePacket(a, b, ++id));
      }
    });
  }
  std::this_thread::sleep_for(Millis(20));
  network.Shutdown();  // must not deadlock against in-flight Sends
  stop.store(true);
  for (auto& thread : senders) {
    thread.join();
  }
  // Sends that raced the shutdown were silently discarded, never delivered
  // partially; a second Shutdown is a no-op.
  network.Shutdown();
}

TEST(NetworkLifecycleTest, SinkResendsWhileDraining) {
  // A sink that forwards to the next node exercises re-entrant Send from
  // delivery workers; DrainForTesting must wait for the whole cascade.
  Network network(19, nullptr, nullptr, /*shards=*/4);
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 0, 0});
  constexpr int kNodes = 6;
  constexpr uint64_t kHops = 40;
  std::atomic<uint64_t> hops{0};
  std::vector<NodeId> ids;
  for (int i = 0; i < kNodes; ++i) {
    ids.push_back(network.AddNode("hop" + std::to_string(i)));
  }
  for (int i = 0; i < kNodes; ++i) {
    const NodeId next = ids[(i + 1) % kNodes];
    network.SetSink(ids[i], [&, next](Packet&& p) {
      if (hops.fetch_add(1) + 1 < kHops) {
        network.Send(MakePacket(p.dst, next, p.msg_id + 1));
      }
    });
  }
  network.Send(MakePacket(ids[0], ids[1], 1));
  network.DrainForTesting();
  EXPECT_GE(hops.load(), kHops);
  const NetworkStats stats = network.stats();
  EXPECT_EQ(stats.packets_delivered, stats.packets_sent);
}

TEST(NetworkLifecycleTest, DropDecisionsIdenticalAcrossWorkerCounts) {
  // Loss/corruption are decided at Send() time from one seeded rng, so the
  // counts must be bit-identical at every worker count for the same
  // sequence of Sends.
  auto run = [](size_t shards) {
    Network network(123, nullptr, nullptr, shards);
    network.SetDefaultLink(LinkParams{Micros(10), Micros(5), 0.2, 0.1, 0});
    const NodeId a = network.AddNode("a");
    std::vector<NodeId> dsts;
    for (int i = 0; i < 8; ++i) {
      const NodeId id = network.AddNode("d" + std::to_string(i));
      network.SetSink(id, [](Packet&&) {});
      dsts.push_back(id);
    }
    for (int i = 0; i < 2000; ++i) {
      network.Send(MakePacket(a, dsts[i % dsts.size()],
                              static_cast<uint64_t>(i)));
    }
    network.DrainForTesting();
    return network.stats();
  };
  const NetworkStats one = run(1);
  for (size_t shards : {2u, 4u, 8u}) {
    const NetworkStats many = run(shards);
    EXPECT_EQ(many.packets_dropped, one.packets_dropped) << shards;
    EXPECT_EQ(many.packets_corrupted, one.packets_corrupted) << shards;
    EXPECT_EQ(many.packets_delivered, one.packets_delivered) << shards;
  }
}

}  // namespace
}  // namespace guardians
