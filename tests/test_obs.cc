// Tests of the observability layer: counters and histograms, drop-reason
// attribution (a retired port is not a full one), trace-id propagation
// across fragmentation and reply hops, the ReliableSend backoff, and the
// NodeName dangling-reference regression.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/guardian/system.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sendprims/reliable_send.h"

namespace guardians {
namespace {

PortType EchoPortType() {
  return PortType("obs_echo",
                  {MessageSig{"put",
                              {ArgType::Of(TypeTag::kString)},
                              {"got"}}});
}

PortType EchoReplyType() {
  return PortType("obs_echo_reply",
                  {MessageSig{"got", {ArgType::Of(TypeTag::kString)}, {}}});
}

// ---------------------------------------------------------------------------
// Metrics primitives
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAndRegistryBasics) {
  MetricsRegistry registry;
  Counter* c = registry.counter("a.b");
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->value(), 5u);
  // Get-or-create: same name, same counter.
  EXPECT_EQ(registry.counter("a.b"), c);
  EXPECT_EQ(registry.CounterValue("a.b"), 5u);
  EXPECT_EQ(registry.CounterValue("missing"), 0u);

  registry.counter("a.c")->Inc();
  registry.counter("z")->Inc();
  auto prefixed = registry.CountersWithPrefix("a.");
  ASSERT_EQ(prefixed.size(), 2u);
  EXPECT_EQ(prefixed["a.b"], 5u);
  EXPECT_EQ(prefixed["a.c"], 1u);
}

TEST(Metrics, HistogramBucketing) {
  Histogram h({10, 100, 1000});
  for (uint64_t v : {1u, 9u, 10u, 11u, 100u, 500u, 1000u, 5000u, 9999u}) {
    h.Observe(v);
  }
  EXPECT_EQ(h.count(), 9u);
  EXPECT_EQ(h.sum(), 1u + 9 + 10 + 11 + 100 + 500 + 1000 + 5000 + 9999);
  auto buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(buckets[0], 3u);      // <= 10
  EXPECT_EQ(buckets[1], 2u);      // <= 100
  EXPECT_EQ(buckets[2], 2u);      // <= 1000
  EXPECT_EQ(buckets[3], 2u);      // overflow
  EXPECT_FALSE(h.ToString().empty());
}

TEST(Metrics, ReportListsNonzeroCounters) {
  MetricsRegistry registry;
  registry.counter("hits")->Inc(3);
  registry.counter("never");
  const std::string report = registry.Report();
  EXPECT_NE(report.find("hits"), std::string::npos);
  EXPECT_EQ(report.find("never"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace buffer
// ---------------------------------------------------------------------------

TEST(Trace, RecordAndDump) {
  TraceBuffer traces;
  traces.Record(7, 1, "send", "hello");
  traces.Record(7, 0, "net.delivered");
  traces.Record(7, 2, "recv", "hello");
  traces.Record(0, 1, "send", "untraced is a no-op");
  EXPECT_EQ(traces.trace_count(), 1u);
  ASSERT_TRUE(traces.HasTrace(7));
  const std::string dump = traces.DumpTrace(7);
  EXPECT_NE(dump.find("send"), std::string::npos);
  EXPECT_NE(dump.find("net.delivered"), std::string::npos);
  EXPECT_NE(dump.find("recv"), std::string::npos);
  auto found = traces.FindTraceWithPoint("net.");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 7u);
  EXPECT_FALSE(traces.FindTraceWithPoint("port.drop.").has_value());
}

// ---------------------------------------------------------------------------
// Drop-reason attribution
// ---------------------------------------------------------------------------

TEST(DropReasons, PortPushDistinguishesFullFromRetired) {
  Mailbox mailbox;
  PortName pn;
  Port port(pn, EchoPortType(), &mailbox, /*capacity=*/1);
  EXPECT_EQ(port.Push(Received{}), PushResult::kOk);
  EXPECT_EQ(port.Push(Received{}), PushResult::kFull);
  EXPECT_EQ(port.discarded_full(), 1u);
  EXPECT_EQ(port.discarded_retired(), 0u);
  port.Retire();
  // Retiring discards the message still queued (counted into the retired
  // ledger — it was enqueued but will never be received), and subsequent
  // pushes are rejected into the same bucket.
  EXPECT_EQ(port.discarded_retired(), 1u);
  EXPECT_EQ(port.Push(Received{}), PushResult::kRetired);
  EXPECT_EQ(port.discarded_full(), 1u);
  EXPECT_EQ(port.discarded_retired(), 2u);
}

// Regression for the Retire() accounting bug: messages sitting in the
// queue at retire time used to vanish from the ledger entirely. The
// conservation law is enqueued == popped + discarded-at-retire, with
// rejected pushes accounted separately on top.
TEST(DropReasons, RetireCountsQueuedMessagesIntoLedger) {
  Mailbox mailbox;
  PortName pn;
  Port port(pn, EchoPortType(), &mailbox, /*capacity=*/8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(port.Push(Received{}), PushResult::kOk);
  }
  // Consume two; three stay queued.
  {
    std::lock_guard<std::mutex> lock(mailbox.mu);
    (void)port.PopLocked();
    (void)port.PopLocked();
  }
  port.Retire();
  EXPECT_EQ(port.depth(), 0u);
  EXPECT_EQ(port.enqueued(), 5u);
  EXPECT_EQ(port.discarded_retired(), 3u);  // the queued messages died here
  EXPECT_EQ(port.discarded_full(), 0u);
  // Ledger closes: everything enqueued was either received or counted as
  // discarded at retirement.
  EXPECT_EQ(port.enqueued(), 2u + port.discarded_retired());
  // A post-retirement push lands in the same bucket, on top.
  EXPECT_EQ(port.Push(Received{}), PushResult::kRetired);
  EXPECT_EQ(port.discarded_retired(), 4u);
}

// Control traffic (acks, failure nacks, probes) is admitted into bounded
// headroom above capacity when the data buffer is full — backpressure
// signals must never themselves be shed (DESIGN.md §11).
TEST(DropReasons, ControlTrafficUsesHeadroomAboveCapacity) {
  Mailbox mailbox;
  PortName pn;
  Port port(pn, EchoPortType(), &mailbox, /*capacity=*/2);
  EXPECT_EQ(port.Push(Received{}), PushResult::kOk);
  EXPECT_EQ(port.Push(Received{}), PushResult::kOk);
  // Data is shed at capacity...
  EXPECT_EQ(port.Push(Received{}), PushResult::kFull);
  // ...but control still gets in, counted as headroom use.
  EXPECT_EQ(port.Push(Received{}, /*control=*/true), PushResult::kOk);
  EXPECT_EQ(port.control_overflow(), 1u);
  // The headroom itself is bounded.
  for (size_t i = 1; i < Port::kControlHeadroom; ++i) {
    EXPECT_EQ(port.Push(Received{}, /*control=*/true), PushResult::kOk);
  }
  EXPECT_EQ(port.Push(Received{}, /*control=*/true), PushResult::kFull);
  EXPECT_EQ(port.control_overflow(), Port::kControlHeadroom);
}

class ObsSystemTest : public ::testing::Test {
 protected:
  ObsSystemTest() : system_(MakeConfig()) {
    a_ = &system_.AddNode("a");
    b_ = &system_.AddNode("b");
    for (auto* node : {a_, b_}) {
      node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    }
    sender_ = *a_->Create<ShellGuardian>("shell", "sender", {});
    receiver_ = *b_->Create<ShellGuardian>("shell", "receiver", {});
    SetCurrentTraceId(0);
  }

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 11;
    config.default_link.latency = Micros(50);
    // Small enough that the big payload below fragments into many packets.
    config.limits.max_packet_payload = 64;
    return config;
  }

  System system_;
  NodeRuntime* a_ = nullptr;
  NodeRuntime* b_ = nullptr;
  ShellGuardian* sender_ = nullptr;
  ShellGuardian* receiver_ = nullptr;
};

TEST_F(ObsSystemTest, RetiredPortDropIsAttributedAsRetiredNotFull) {
  Port* target = receiver_->AddPort(EchoPortType(), /*capacity=*/4);
  const PortName stale = target->name();
  receiver_->RetirePort(target);
  Port* reply_port = sender_->AddPort(EchoReplyType(), 4);

  ASSERT_TRUE(sender_
                  ->SendFull(stale, "put", {Value::Str("x")},
                             reply_port->name(), PortName{})
                  .ok());
  system_.network().DrainForTesting();

  EXPECT_EQ(b_->stats().discarded_port_retired, 1u);
  EXPECT_EQ(b_->stats().discarded_port_full, 0u);
  EXPECT_EQ(b_->stats().discarded_no_port, 0u);
  EXPECT_EQ(system_.metrics().CounterValue("deliver.drop.port_retired"), 1u);
  EXPECT_EQ(system_.metrics().CounterValue("deliver.drop.port_full"), 0u);

  // The system failure reply names the real reason.
  auto failure = sender_->Receive(reply_port, Millis(2000));
  ASSERT_TRUE(failure.ok());
  EXPECT_EQ(failure->command, std::string(kFailureCommand));
  ASSERT_FALSE(failure->args.empty());
  EXPECT_NE(failure->args[0].string_value().find("retired"),
            std::string::npos);

  // The trace of the lost message ends at the retired-port drop and never
  // claims the port was full.
  auto dropped = system_.traces().FindTraceWithPoint("port.drop.retired");
  ASSERT_TRUE(dropped.has_value());
  const std::string dump = system_.traces().DumpTrace(*dropped);
  EXPECT_NE(dump.find("send"), std::string::npos);
  EXPECT_NE(dump.find("port.drop.retired"), std::string::npos);
  EXPECT_EQ(dump.find("port.drop.full"), std::string::npos);
}

TEST_F(ObsSystemTest, FullPortDropIsAttributedAsFull) {
  Port* target = receiver_->AddPort(EchoPortType(), /*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        sender_->Send(target->name(), "put", {Value::Str("x")}).ok());
  }
  system_.network().DrainForTesting();
  EXPECT_EQ(b_->stats().discarded_port_full, 3u);
  EXPECT_EQ(b_->stats().discarded_port_retired, 0u);
  EXPECT_EQ(target->discarded_full(), 3u);
  EXPECT_EQ(system_.metrics().CounterValue("deliver.drop.port_full"), 3u);
  EXPECT_EQ(system_.metrics().CounterValue("deliver.delivered"), 2u);
}

// ---------------------------------------------------------------------------
// Trace-id propagation
// ---------------------------------------------------------------------------

TEST_F(ObsSystemTest, TraceIdSurvivesFragmentationAndReplyHops) {
  Port* target = receiver_->AddPort(EchoPortType(), 8);
  Port* reply_port = sender_->AddPort(EchoReplyType(), 8);

  // ~20 fragments at max_packet_payload = 64.
  const std::string big(1280, 'x');
  auto sent = sender_->SendFull(target->name(), "put", {Value::Str(big)},
                                reply_port->name(), PortName{});
  ASSERT_TRUE(sent.ok());
  // An origin send mints trace_id = msg_id.
  const uint64_t trace = *sent;
  EXPECT_EQ(CurrentTraceId(), trace);

  // Clear this thread's trace so the receive leg must get the id off the
  // wire, not from the thread-local.
  SetCurrentTraceId(0);
  auto request = receiver_->Receive(target, Millis(2000));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->trace_id, trace);   // survived fragmentation
  EXPECT_EQ(CurrentTraceId(), trace);    // receive joins the chain

  // The reply inherits the chain...
  ASSERT_TRUE(receiver_
                  ->Send(request->reply_to, "got", {Value::Str("ok")})
                  .ok());
  SetCurrentTraceId(0);
  auto reply = sender_->Receive(reply_port, Millis(2000));
  ASSERT_TRUE(reply.ok());
  // ...and arrives back under the same trace id.
  EXPECT_EQ(reply->trace_id, trace);

  // The trace shows both directions: request hops and the reply hop.
  // (Drain first: the delivery thread records port.enqueued after waking
  // the receiver, so the last hop may still be mid-record.)
  system_.network().DrainForTesting();
  auto events = system_.traces().Events(trace);
  int sends = 0, recvs = 0, delivered = 0, enqueued = 0;
  for (const auto& event : events) {
    if (event.point == "send") ++sends;
    if (event.point == "recv") ++recvs;
    if (event.point == "net.delivered") ++delivered;
    if (event.point == "port.enqueued") ++enqueued;
  }
  EXPECT_EQ(sends, 2);
  EXPECT_EQ(recvs, 2);
  EXPECT_EQ(enqueued, 2);
  EXPECT_GE(delivered, 2);  // one per reassembled message, at least
}

// ---------------------------------------------------------------------------
// ReliableSend backoff
// ---------------------------------------------------------------------------

TEST_F(ObsSystemTest, ReliableSendBacksOffBetweenTimedOutAttempts) {
  // A real port nobody ever receives from: every attempt times out.
  Port* target = receiver_->AddPort(EchoPortType(), 64);

  ReliableSendOptions options;
  options.ack_timeout = Millis(5);
  options.max_attempts = 3;
  options.initial_backoff = Millis(2);
  options.max_backoff = Millis(8);
  options.backoff_multiplier = 2.0;
  options.jitter = 0.0;  // deterministic delays: 2ms then 4ms

  const TimePoint start = Now();
  auto result = ReliableSend(*sender_, target->name(), "put",
                             {Value::Str("x")}, options);
  const auto elapsed = Now() - start;
  EXPECT_EQ(result.status().code(), Code::kTimeout);

  MetricsRegistry& metrics = system_.metrics();
  EXPECT_EQ(metrics.CounterValue("sendprims.reliable.calls"), 1u);
  EXPECT_EQ(metrics.CounterValue("sendprims.reliable.attempts"), 3u);
  EXPECT_EQ(metrics.CounterValue("sendprims.reliable.timeouts"), 3u);
  EXPECT_EQ(metrics.CounterValue("sendprims.reliable.exhausted"), 1u);
  Histogram* backoff = metrics.histogram("sendprims.reliable.backoff_us");
  EXPECT_EQ(backoff->count(), 2u);       // no sleep after the last attempt
  EXPECT_EQ(backoff->sum(), 6000u);      // 2ms + 4ms, jitter off
  // 3 timeouts of 5ms + 6ms of backoff actually elapsed.
  EXPECT_GE(ToMicros(elapsed), 3 * 5000 + 6000);
}

TEST_F(ObsSystemTest, ReliableSendOutcomeBreakdownSumsToCalls) {
  Port* target = receiver_->AddPort(EchoPortType(), 8);

  // Outcome 1: ok (a receiver is actually draining the port).
  std::thread drainer([this, target] {
    (void)receiver_->Receive(target, Millis(5000));
  });
  ReliableSendOptions options;
  options.ack_timeout = Millis(2000);
  options.max_attempts = 3;
  auto ok = ReliableSend(*sender_, target->name(), "put", {Value::Str("x")},
                         options);
  drainer.join();
  ASSERT_TRUE(ok.ok()) << ok.status();

  // Outcome 2: hard failure. "nudge" is not in the port's type; the send
  // fails locally with a type error, which no retry can cure. This used to
  // return with no counter at all, leaving the breakdown short of .calls.
  auto hard = ReliableSend(*sender_, target->name(), "nudge", {}, options);
  ASSERT_FALSE(hard.ok());
  ASSERT_NE(hard.status().code(), Code::kTimeout);

  // Outcome 3: exhausted (nobody receives; fast attempts, no backoff).
  options.ack_timeout = Millis(5);
  options.max_attempts = 2;
  options.initial_backoff = Micros(0);
  auto exhausted = ReliableSend(*sender_, target->name(), "put",
                                {Value::Str("x")}, options);
  EXPECT_EQ(exhausted.status().code(), Code::kTimeout);

  MetricsRegistry& metrics = system_.metrics();
  EXPECT_EQ(metrics.CounterValue("sendprims.reliable.hard_fail"), 1u);
  // The per-call outcome buckets account for every call — the failure
  // breakdown in System::Report() must sum exactly.
  EXPECT_EQ(metrics.CounterValue("sendprims.reliable.calls"),
            metrics.CounterValue("sendprims.reliable.ok") +
                metrics.CounterValue("sendprims.reliable.exhausted") +
                metrics.CounterValue("sendprims.reliable.deadline_exceeded") +
                metrics.CounterValue("sendprims.reliable.hard_fail"));
}

TEST_F(ObsSystemTest, SystemReportMentionsDropReasonsAndPorts) {
  Port* target = receiver_->AddPort(EchoPortType(), /*capacity=*/1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        sender_->Send(target->name(), "put", {Value::Str("x")}).ok());
  }
  system_.network().DrainForTesting();
  const std::string report = system_.Report();
  EXPECT_NE(report.find("discarded_port_full"), std::string::npos);
  EXPECT_NE(report.find("deliver.drop.port_full"), std::string::npos);
  EXPECT_NE(report.find("obs_echo"), std::string::npos);
  EXPECT_NE(report.find("traces:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Network regressions
// ---------------------------------------------------------------------------

TEST(NetworkRegression, NodeNameSafeUnderConcurrentAddNode) {
  Network net(1);
  ASSERT_EQ(net.AddNode("n1"), 1u);
  std::thread adder([&net] {
    for (int i = 2; i <= 512; ++i) {
      net.AddNode("n" + std::to_string(i));
    }
  });
  // Before NodeName returned by value, this read a reference into a vector
  // the adder thread was concurrently reallocating.
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(net.NodeName(1), "n1");
  }
  adder.join();
  EXPECT_EQ(net.NodeName(512), "n512");
  EXPECT_EQ(net.node_count(), 512u);
}

}  // namespace
}  // namespace guardians
