// Deterministic chaos harness tests: schedule generation is a pure function
// of the seed, composed-fault runs hold every global invariant, outcome
// counts are bit-identical across the delivery shard/batch grid, and the
// shrinker isolates a planted at-most-once bug to a minimal schedule.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/chaos.h"

// Under ThreadSanitizer the 10-20x slowdown eats the retry/timeout margins
// the lockstep driver's count-determinism depends on (retransmissions fire
// or don't depending on scheduler jitter), so the grid test still runs for
// race coverage and invariant checking but skips the bit-identical-counts
// comparison. Plain builds assert the full contract.
#if defined(__SANITIZE_THREAD__)
#define GUARDIANS_CHAOS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GUARDIANS_CHAOS_TSAN 1
#endif
#endif
#ifndef GUARDIANS_CHAOS_TSAN
#define GUARDIANS_CHAOS_TSAN 0
#endif

namespace guardians {
namespace {

bool SameEvent(const ChaosEvent& a, const ChaosEvent& b) {
  return a.kind == b.kind && a.epoch == b.epoch && a.a == b.a && a.b == b.b &&
         a.crash_point == b.crash_point && a.nth_hit == b.nth_hit &&
         a.storm.drop_prob == b.storm.drop_prob &&
         a.storm.dup_prob == b.storm.dup_prob &&
         a.storm.corrupt_prob == b.storm.corrupt_prob &&
         a.storm.latency == b.storm.latency &&
         a.storm.jitter == b.storm.jitter && a.skew_us == b.skew_us &&
         a.drift == b.drift && a.reorder_k == b.reorder_k;
}

bool SameSchedule(const std::vector<ChaosEvent>& a,
                  const std::vector<ChaosEvent>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameEvent(a[i], b[i])) {
      return false;
    }
  }
  return true;
}

std::string DescribeAll(const std::vector<ChaosEvent>& schedule) {
  std::string out;
  for (const ChaosEvent& ev : schedule) {
    out += ev.Describe() + "; ";
  }
  return out;
}

TEST(ChaosSchedule, GenerationIsPureInTheSeed) {
  ChaosConfig config;
  config.seed = 41;
  ChaosEngine engine(config);
  const auto first = engine.GenerateSchedule();
  const auto second = engine.GenerateSchedule();
  EXPECT_TRUE(SameSchedule(first, second)) << DescribeAll(first);

  ChaosConfig other = config;
  other.seed = 42;
  const auto different = ChaosEngine(other).GenerateSchedule();
  EXPECT_FALSE(SameSchedule(first, different))
      << "seeds 41 and 42 generated identical schedules";
}

// A single run's counts can be skewed by host-level stalls (cgroup CPU
// throttling on small CI boxes parks the whole process for hundreds of
// milliseconds, which makes a healthy op time out and retry). No timeout
// margin beats the quota, so each grid point is *stabilized*: run twice,
// and if the two runs disagree run a third and take the agreeing pair. A
// genuine determinism bug reproduces bit-identically on every run and
// still fails; a throttle stall does not repeat itself.
ChaosReport StableRun(const ChaosConfig& config) {
  ChaosReport first = ChaosEngine(config).Run();
  ChaosReport second = ChaosEngine(config).Run();
  if (first.counts.Equal(second.counts)) {
    return first;
  }
  ChaosReport third = ChaosEngine(config).Run();
  if (third.counts.Equal(second.counts)) {
    return second;
  }
  return first;  // matches third, or all three disagree and the test fails
}

// The test_batching contract extended to whole chaos runs: same seed, same
// schedule, same delivered/dropped/duplicated/suppression counts at every
// (delivery_shards x delivery_batch_max) point.
TEST(ChaosDeterminism, CountsAreGridIdentical) {
  const size_t kShards[] = {1, 4};
  const size_t kBatches[] = {1, 64};
  ChaosReport baseline;
  bool have_baseline = false;
  for (size_t shards : kShards) {
    for (size_t batch : kBatches) {
      ChaosConfig config;
      config.seed = 11;
      config.delivery_shards = shards;
      config.delivery_batch_max = batch;
      ChaosReport report = StableRun(config);
      EXPECT_TRUE(report.ok())
          << "shards=" << shards << " batch=" << batch << "\n"
          << report.Summary() << "\n"
          << report.failure_dump;
      if (!have_baseline) {
        baseline = report;
        have_baseline = true;
        EXPECT_GE(report.events_applied, 2u) << report.Summary();
        continue;
      }
      EXPECT_TRUE(SameSchedule(baseline.schedule, report.schedule))
          << "shards=" << shards << " batch=" << batch;
      EXPECT_EQ(baseline.crashes, report.crashes);
      if (!GUARDIANS_CHAOS_TSAN) {
        EXPECT_TRUE(baseline.counts.Equal(report.counts))
            << "shards=" << shards << " batch=" << batch << "\n"
            << baseline.counts.Diff(report.counts);
        EXPECT_EQ(baseline.ops_acked, report.ops_acked);
      }
    }
  }
}

TEST(ChaosInvariants, DeterministicSeedsRunClean) {
  for (uint64_t seed : {23ull, 37ull}) {
    ChaosConfig config;
    config.seed = seed;
    ChaosEngine engine(config);
    ChaosReport report = engine.Run();
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n"
                             << report.Summary() << "\n"
                             << report.failure_dump;
    EXPECT_EQ(report.ops_attempted, config.epochs * config.ops_per_epoch);
  }
}

TEST(ChaosInvariants, SupervisedSeedRunsClean) {
  ChaosConfig config;
  config.seed = 7;
  config.supervised = true;
  ChaosEngine engine(config);
  ChaosReport report = engine.Run();
  EXPECT_TRUE(report.ok()) << report.Summary() << "\n" << report.failure_dump;
}

// The shrinker proof: plant a known at-most-once bug (the dedup journal
// write is skipped, so a crash loses the duplicate-suppression floor), run
// a schedule where the bug bites — a crash followed by a duplicate replay
// of an acked non-idempotent op — among decoy events, and assert the
// shrinker isolates the crash+replay pair.
ChaosEvent Ev(ChaosEventKind kind, int epoch, uint32_t a = 0, uint32_t b = 0) {
  ChaosEvent ev;
  ev.kind = kind;
  ev.epoch = epoch;
  ev.a = a;
  ev.b = b;
  return ev;
}

std::vector<ChaosEvent> PlantedBugSchedule() {
  std::vector<ChaosEvent> schedule;
  schedule.push_back(Ev(ChaosEventKind::kPartition, 1, 3, 2));   // decoy
  schedule.push_back(Ev(ChaosEventKind::kStoreFail, 1, 2));      // decoy
  schedule.push_back(Ev(ChaosEventKind::kHeal, 2, 3, 2));        // decoy
  schedule.push_back(Ev(ChaosEventKind::kStoreHeal, 2, 2));      // decoy
  schedule.push_back(Ev(ChaosEventKind::kCrash, 2, 1));
  schedule.push_back(Ev(ChaosEventKind::kDupReplay, 2));
  return schedule;
}

ChaosConfig PlantedBugConfig() {
  ChaosConfig config;
  config.seed = 5;
  config.epochs = 4;
  config.plant_dedup_bug = true;
  return config;
}

TEST(ChaosShrinker, PlantedScheduleIsCleanWithoutTheBug) {
  ChaosConfig config = PlantedBugConfig();
  config.plant_dedup_bug = false;
  ChaosEngine engine(config);
  ChaosReport report = engine.RunSchedule(PlantedBugSchedule());
  EXPECT_TRUE(report.ok()) << report.Summary() << "\n" << report.failure_dump;
  // The replay really happened and was really suppressed.
  EXPECT_EQ(report.dup_replays, 1u);
  EXPECT_GE(report.counts.suppressed, 1u);
}

TEST(ChaosShrinker, PlantedBugIsCaughtAndShrunkToTheMinimalPair) {
  const ChaosConfig config = PlantedBugConfig();
  ChaosEngine engine(config);
  ChaosReport report = engine.RunSchedule(PlantedBugSchedule());
  ASSERT_FALSE(report.ok()) << "planted bug was not caught";
  bool witnessed = false;
  for (const ChaosViolation& v : report.violations) {
    witnessed = witnessed || v.invariant == "tally.double_apply";
  }
  EXPECT_TRUE(witnessed) << report.Summary();
  EXPECT_FALSE(report.failure_dump.empty());
  EXPECT_NE(report.failure_dump.find("chaos seed"), std::string::npos);

  ShrinkResult shrunk = ShrinkSchedule(config, report.schedule);
  EXPECT_LE(shrunk.minimal.size(), 3u) << DescribeAll(shrunk.minimal);
  EXPECT_FALSE(shrunk.final_report.ok());
  bool has_crash = false;
  bool has_replay = false;
  for (const ChaosEvent& ev : shrunk.minimal) {
    has_crash = has_crash || ev.kind == ChaosEventKind::kCrash;
    has_replay = has_replay || ev.kind == ChaosEventKind::kDupReplay;
  }
  EXPECT_TRUE(has_crash) << DescribeAll(shrunk.minimal);
  EXPECT_TRUE(has_replay) << DescribeAll(shrunk.minimal);
  EXPECT_GE(shrunk.runs, 2);
}

// --- Simulated time ---------------------------------------------------------

// The grid-determinism contract extended to virtual time with clock chaos:
// sim_time unlocks skew/drift/reordering events in the generated schedule,
// and the counts must still be bit-identical at every shard/batch point —
// the whole run is a pure function of the seed because every wait is a
// virtual deadline, not a host-scheduler race.
TEST(ChaosSimTime, CountsAreGridIdenticalUnderClockChaos) {
  const size_t kShards[] = {1, 4};
  const size_t kBatches[] = {1, 64};
  ChaosReport baseline;
  bool have_baseline = false;
  bool saw_clock_event = false;
  for (size_t shards : kShards) {
    for (size_t batch : kBatches) {
      ChaosConfig config;
      config.seed = 11;
      config.sim_time = true;
      config.delivery_shards = shards;
      config.delivery_batch_max = batch;
      ChaosReport report = StableRun(config);
      // Virtual time converts host starvation into virtual timeouts: the
      // auto-stepper advances when the waiter registry looks quiet, and a
      // TSAN-slowed (or CPU-throttled) thread mid-computation is
      // indistinguishable from one blocked on a deadline. On a loaded box
      // that can strand enough half-done ops to flunk the conservation
      // invariants before the settle budget recovers them — a property of
      // simulation under load, not of the code under test — so TSAN runs
      // keep the race coverage but skip the outcome assertion (the plain
      // build asserts it, like the count equality below).
      if (!GUARDIANS_CHAOS_TSAN) {
        EXPECT_TRUE(report.ok())
            << "shards=" << shards << " batch=" << batch << "\n"
            << report.Summary() << "\n"
            << report.failure_dump;
      }
      for (const ChaosEvent& ev : report.schedule) {
        saw_clock_event = saw_clock_event ||
                          ev.kind == ChaosEventKind::kClockSkew ||
                          ev.kind == ChaosEventKind::kClockDrift ||
                          ev.kind == ChaosEventKind::kReorderStorm;
      }
      if (!have_baseline) {
        baseline = report;
        have_baseline = true;
        continue;
      }
      EXPECT_TRUE(SameSchedule(baseline.schedule, report.schedule))
          << "shards=" << shards << " batch=" << batch;
      EXPECT_EQ(baseline.crashes, report.crashes);
      if (!GUARDIANS_CHAOS_TSAN) {
        EXPECT_TRUE(baseline.counts.Equal(report.counts))
            << "shards=" << shards << " batch=" << batch << "\n"
            << baseline.counts.Diff(report.counts);
        EXPECT_EQ(baseline.ops_acked, report.ops_acked);
      }
    }
  }
  EXPECT_TRUE(saw_clock_event)
      << "seed 11 generated no clock-chaos events; pick another seed";
}

// The sim-only schedule chapter must not perturb wall-mode schedules: for
// the same seed, the wall schedule is a prefix-filtered view of the sim
// schedule (every non-clock event identical, in the same order).
TEST(ChaosSimTime, WallScheduleUnchangedBySimChapter) {
  ChaosConfig wall;
  wall.seed = 11;
  ChaosConfig sim = wall;
  sim.sim_time = true;
  const auto wall_schedule = ChaosEngine(wall).GenerateSchedule();
  auto sim_schedule = ChaosEngine(sim).GenerateSchedule();
  std::vector<ChaosEvent> sim_filtered;
  for (const ChaosEvent& ev : sim_schedule) {
    if (ev.kind != ChaosEventKind::kClockSkew &&
        ev.kind != ChaosEventKind::kClockDrift &&
        ev.kind != ChaosEventKind::kReorderStorm) {
      sim_filtered.push_back(ev);
    }
  }
  EXPECT_TRUE(SameSchedule(wall_schedule, sim_filtered))
      << "wall: " << DescribeAll(wall_schedule) << "\nsim-filtered: "
      << DescribeAll(sim_filtered);
}

// A reordering storm holds fire-and-forget noise packets mid-epoch and
// releases them in a seed-shuffled order at the epoch boundary. The
// at-most-once layer and packet conservation must absorb the storm.
TEST(ChaosSimTime, ReorderStormHoldsInvariants) {
  ChaosConfig config;
  config.seed = 19;
  config.epochs = 4;
  config.sim_time = true;
  std::vector<ChaosEvent> schedule;
  ChaosEvent storm = Ev(ChaosEventKind::kReorderStorm, 1, 3, 2);
  storm.reorder_k = 6;
  schedule.push_back(storm);
  ChaosEvent storm2 = Ev(ChaosEventKind::kReorderStorm, 2, 3, 2);
  storm2.reorder_k = 4;
  schedule.push_back(storm2);
  ChaosEngine engine(config);
  ChaosReport report = engine.RunSchedule(schedule);
  EXPECT_TRUE(report.ok()) << report.Summary() << "\n" << report.failure_dump;
  EXPECT_EQ(report.events_applied, 2u);
}

// --- The planted clock bug --------------------------------------------------
//
// The bug: the dedup-session idle sweep measures "idle" on the node's
// skewable local clock instead of the monotonic base clock. A forward skew
// step >= the idle horizon makes every live session look ancient, the
// sweep drops them, and a duplicate replay of an acked non-idempotent op
// re-executes. Only a simulated-time schedule can express "the clock jumps
// 30 virtual seconds" deterministically; wall-clock chaos would have to
// actually idle for the horizon and still could not step a node's clock.

std::vector<ChaosEvent> ClockBugSchedule() {
  std::vector<ChaosEvent> schedule;
  schedule.push_back(Ev(ChaosEventKind::kPartition, 1, 3, 2));  // decoy
  schedule.push_back(Ev(ChaosEventKind::kHeal, 2, 3, 2));       // decoy
  ChaosEvent skew = Ev(ChaosEventKind::kClockSkew, 2, 1);
  skew.skew_us = 30'000'000;  // +30s on the region node: >> idle horizon
  schedule.push_back(skew);
  schedule.push_back(Ev(ChaosEventKind::kDupReplay, 2));
  return schedule;
}

ChaosConfig ClockBugConfig() {
  ChaosConfig config;
  config.seed = 9;
  config.epochs = 4;
  config.sim_time = true;
  // Horizon far above any retry span and above the whole run's base-time
  // footprint, so only the skewed view can ever cross it.
  config.dedup_session_idle = Micros(10'000'000);
  config.plant_clock_bug = true;
  return config;
}

TEST(ChaosClockBug, ForwardSkewExposesThePlant) {
  ChaosEngine engine(ClockBugConfig());
  ChaosReport report = engine.RunSchedule(ClockBugSchedule());
  ASSERT_FALSE(report.ok()) << "planted clock bug was not caught";
  bool witnessed = false;
  for (const ChaosViolation& v : report.violations) {
    witnessed = witnessed || v.invariant == "tally.double_apply";
  }
  EXPECT_TRUE(witnessed) << report.Summary();
}

TEST(ChaosClockBug, CleanWithoutThePlant) {
  ChaosConfig config = ClockBugConfig();
  config.plant_clock_bug = false;
  ChaosEngine engine(config);
  ChaosReport report = engine.RunSchedule(ClockBugSchedule());
  EXPECT_TRUE(report.ok()) << report.Summary() << "\n" << report.failure_dump;
  EXPECT_EQ(report.dup_replays, 1u);
  EXPECT_GE(report.counts.suppressed, 1u);
}

TEST(ChaosClockBug, WallClockCannotReproduceIt) {
  // Same schedule, same plant, wall clock: the skew event is a no-op (no
  // SimulatedClock to step) and the local view == the base clock, so the
  // buggy sweep is behaviorally identical to the correct one. This is the
  // bug class wall-clock chaos is structurally blind to.
  ChaosConfig config = ClockBugConfig();
  config.sim_time = false;
  ChaosEngine engine(config);
  ChaosReport report = engine.RunSchedule(ClockBugSchedule());
  EXPECT_TRUE(report.ok()) << report.Summary() << "\n" << report.failure_dump;
  EXPECT_EQ(report.dup_replays, 1u);
}

// The ddmin shrinker on a wider haystack: ten decoys around the planted
// crash+replay pair. Chunk removal must land on exactly the pair (ddmin
// exits 1-minimal: at single-event granularity every survivor was proven
// necessary), in far fewer runs than one-at-a-time removal would take.
TEST(ChaosShrinker, TwelveEventScheduleShrinksToTheMinimalPair) {
  std::vector<ChaosEvent> schedule;
  schedule.push_back(Ev(ChaosEventKind::kPartition, 1, 3, 2));
  schedule.push_back(Ev(ChaosEventKind::kStoreFail, 1, 2));
  schedule.push_back(Ev(ChaosEventKind::kPartitionOneWay, 1, 3, 1));
  schedule.push_back(Ev(ChaosEventKind::kHealOneWay, 2, 3, 1));
  schedule.push_back(Ev(ChaosEventKind::kHeal, 2, 3, 2));
  schedule.push_back(Ev(ChaosEventKind::kStoreHeal, 2, 2));
  schedule.push_back(Ev(ChaosEventKind::kCampusCut, 2));
  schedule.push_back(Ev(ChaosEventKind::kCampusHeal, 2));
  schedule.push_back(Ev(ChaosEventKind::kCrash, 2, 1));
  schedule.push_back(Ev(ChaosEventKind::kDupReplay, 2));
  schedule.push_back(Ev(ChaosEventKind::kPartition, 3, 2, 1));
  schedule.push_back(Ev(ChaosEventKind::kHeal, 3, 2, 1));
  ASSERT_EQ(schedule.size(), 12u);

  const ChaosConfig config = PlantedBugConfig();
  ChaosReport report = ChaosEngine(config).RunSchedule(schedule);
  ASSERT_FALSE(report.ok()) << "planted bug was not caught";

  ShrinkResult shrunk = ShrinkSchedule(config, schedule);
  ASSERT_EQ(shrunk.minimal.size(), 2u) << DescribeAll(shrunk.minimal);
  EXPECT_EQ(shrunk.minimal[0].kind, ChaosEventKind::kCrash)
      << DescribeAll(shrunk.minimal);
  EXPECT_EQ(shrunk.minimal[1].kind, ChaosEventKind::kDupReplay)
      << DescribeAll(shrunk.minimal);
  EXPECT_FALSE(shrunk.final_report.ok());
}

}  // namespace
}  // namespace guardians
