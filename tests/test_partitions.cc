// One-way partitions, quarantine reversal, and campus heal-under-load.
//
// A symmetric partition makes a peer *silent*; a one-way cut makes it
// *deaf or mute*, which is the harder §3.5 case: the request executes but
// the ack never returns, so the client's timeout proves nothing about the
// true state of affairs. These tests pin the Network's directed-cut
// semantics, its separate drop accounting, and the recovery story around
// them (Supervisor::Unquarantine, FailoverCall re-promotion after heal).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/airline/flight_guardian.h"
#include "src/airline/types.h"
#include "src/fault/supervisor.h"
#include "src/guardian/system.h"
#include "src/net/topology.h"
#include "src/sendprims/failover.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

FlightConfig SmallFlight(int64_t flight_no) {
  FlightConfig fc;
  fc.flight_no = flight_no;
  fc.capacity = 16;
  fc.organization = FlightOrganization::kOneAtATime;
  fc.logging = true;
  return fc;
}

TEST(OneWayPartition, AckDirectionCutExecutesButTimesOut) {
  SystemConfig sc;
  sc.seed = 3;
  System system(sc);
  NodeRuntime& server = system.AddNode("server");
  NodeRuntime& client = system.AddNode("client");
  server.RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  client.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  auto flight = server.Create<FlightGuardian>(
      "flight", "f1", SmallFlight(1).ToArgs(), /*persistent=*/true);
  ASSERT_TRUE(flight.ok());
  const PortName flight_port = (*flight)->ProvidedPorts()[0];
  auto clerk = client.Create<ShellGuardian>("shell", "clerk", {});
  ASSERT_TRUE(clerk.ok());

  // Mute the server: requests flow in, replies are cut.
  system.network().SetPartitionedOneWay(server.id(), client.id(), true);
  EXPECT_TRUE(system.network().IsPartitioned(server.id(), client.id()));
  EXPECT_FALSE(system.network().IsPartitioned(client.id(), server.id()));

  RemoteCallOptions options;
  options.timeout = Millis(50);
  options.max_attempts = 2;
  auto reply = RemoteCall(**clerk, flight_port, "reserve",
                          {Value::Str("p0"), Value::Str("d0")},
                          ReservationReplyType(), options);
  EXPECT_FALSE(reply.ok()) << reply->command;
  system.WaitQuiescent();
  // The request side of the link was open: the op executed.
  EXPECT_TRUE((*flight)->SnapshotDb().IsReserved("p0", "d0"));
  EXPECT_GT(system.metrics().CounterValue("net.drop.partition_oneway"), 0u);
  EXPECT_EQ(system.metrics().CounterValue("net.drop.partition"), 0u);

  // Heal: the same logical request now acks (and proves it had executed —
  // the fresh call gets "pre_reserved", not "ok").
  system.network().SetPartitionedOneWay(server.id(), client.id(), false);
  EXPECT_FALSE(system.network().IsPartitioned(server.id(), client.id()));
  reply = RemoteCall(**clerk, flight_port, "reserve",
                     {Value::Str("p0"), Value::Str("d0")},
                     ReservationReplyType(), options);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->command, "pre_reserved");

  // The reverse direction cuts requests instead: nothing executes.
  system.network().SetPartitionedOneWay(client.id(), server.id(), true);
  const uint64_t oneway_before =
      system.metrics().CounterValue("net.drop.partition_oneway");
  reply = RemoteCall(**clerk, flight_port, "reserve",
                     {Value::Str("p1"), Value::Str("d0")},
                     ReservationReplyType(), options);
  EXPECT_FALSE(reply.ok());
  system.WaitQuiescent();
  EXPECT_FALSE((*flight)->SnapshotDb().IsReserved("p1", "d0"));
  EXPECT_GT(system.metrics().CounterValue("net.drop.partition_oneway"),
            oneway_before);

  // Packet conservation holds with the directed drops accounted.
  const NetworkStats s = system.network().stats();
  EXPECT_EQ(s.packets_delivered + s.packets_dropped,
            s.packets_sent + s.packets_duplicated);
}

TEST(Unquarantine, CountsOnceAndRejoinsRotation) {
  System system;
  NodeRuntime& service = system.AddNode("service");
  Supervisor supervisor(&system);
  supervisor.ForceQuarantine(service.id());
  EXPECT_TRUE(supervisor.IsQuarantined(service.id()));
  EXPECT_TRUE(system.NodeQuarantined(service.id()));

  supervisor.Unquarantine(service.id());
  EXPECT_FALSE(supervisor.IsQuarantined(service.id()));
  EXPECT_FALSE(system.NodeQuarantined(service.id()));
  EXPECT_EQ(system.metrics().CounterValue("supervisor.unquarantines"), 1u);
  EXPECT_EQ(supervisor.Health(service.id()).strikes, 0);

  // Un-quarantining a healthy node is a no-op, not a counted event.
  supervisor.Unquarantine(service.id());
  EXPECT_EQ(system.metrics().CounterValue("supervisor.unquarantines"), 1u);
}

TEST(CampusPartition, HealUnderLoadRecoversThePrimary) {
  SystemConfig sc;
  sc.seed = 9;
  System system(sc);
  NodeRuntime& primary = system.AddNode("primary");
  NodeRuntime& backup = system.AddNode("backup");
  NodeRuntime& client = system.AddNode("client");
  primary.RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  backup.RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  client.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  // Primary alone on campus 0; the client shares campus 1 with the backup.
  const CampusTopology topology = BuildCampuses(
      system.network(), {0, 1, 1}, LinkParams{}, LinkParams{});

  auto fp = primary.Create<FlightGuardian>(
      "flight", "fp", SmallFlight(7).ToArgs(), /*persistent=*/true);
  auto fb = backup.Create<FlightGuardian>(
      "flight", "fb", SmallFlight(7).ToArgs(), /*persistent=*/true);
  auto clerk = client.Create<ShellGuardian>("shell", "clerk", {});
  ASSERT_TRUE(fp.ok() && fb.ok() && clerk.ok());
  const std::vector<PortName> targets = {(*fp)->ProvidedPorts()[0],
                                         (*fb)->ProvidedPorts()[0]};
  Supervisor supervisor(&system);

  RemoteCallOptions per_target;
  per_target.timeout = Millis(80);
  per_target.max_attempts = 1;
  auto probe = [&] {
    return FailoverCall(**clerk, targets, "flight_stats",
                        {Value::Str("manager")}, ReservationReplyType(),
                        per_target);
  };

  auto before = probe();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->target_index, 0);

  // WAN cut: the whole primary campus goes dark; load keeps arriving.
  PartitionCampuses(system.network(), topology, 0, 1, true);
  for (int i = 0; i < 4; ++i) {
    auto during = FailoverCall(
        **clerk, targets, "reserve",
        {Value::Str("p" + std::to_string(i)), Value::Str("d0")},
        ReservationReplyType(), per_target);
    ASSERT_TRUE(during.ok()) << during.status().ToString();
    EXPECT_EQ(during->target_index, 1) << "op " << i;
  }
  // An operator (or the chaos engine) quarantines the unreachable primary
  // so further calls stop burning the per-target timeout up front.
  supervisor.ForceQuarantine(primary.id());
  auto demoted = probe();
  ASSERT_TRUE(demoted.ok());
  EXPECT_EQ(demoted->target_index, 1);

  // Heal under the same load pattern: Unquarantine restores rotation and
  // the very next call lands on the recovered primary.
  PartitionCampuses(system.network(), topology, 0, 1, false);
  supervisor.Unquarantine(primary.id());
  auto after = probe();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->target_index, 0);
  EXPECT_GT(system.metrics().CounterValue("supervisor.unquarantines"), 0u);

  // The backup took the writes; nothing was lost or duplicated on the wire.
  system.WaitQuiescent();
  EXPECT_TRUE((*fb)->SnapshotDb().IsReserved("p0", "d0"));
  EXPECT_FALSE((*fp)->SnapshotDb().IsReserved("p0", "d0"));
  EXPECT_GT(system.metrics().CounterValue("net.drop.partition"), 0u);
  const NetworkStats s = system.network().stats();
  EXPECT_EQ(s.packets_delivered + s.packets_dropped,
            s.packets_sent + s.packets_duplicated);
}

}  // namespace
}  // namespace guardians
