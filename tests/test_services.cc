// Tests for the service guardians (catalog, cabinet, spooler) and the
// dispatch / typed-send ergonomics.
#include <gtest/gtest.h>

#include <thread>

#include "src/guardian/dispatch.h"
#include "src/guardian/system.h"
#include "src/guardian/typed.h"
#include "src/sendprims/remote_call.h"
#include "src/services/cabinet.h"
#include "src/services/catalog.h"
#include "src/services/spooler.h"

namespace guardians {
namespace {

class ServicesTest : public ::testing::Test {
 protected:
  ServicesTest() : system_(MakeConfig()) {
    server_ = &system_.AddNode("server");
    client_node_ = &system_.AddNode("client");
    server_->RegisterGuardianType(CatalogGuardian::kTypeName,
                                  MakeFactory<CatalogGuardian>());
    server_->RegisterGuardianType(CabinetGuardian::kTypeName,
                                  MakeFactory<CabinetGuardian>());
    server_->RegisterGuardianType(SpoolerGuardian::kTypeName,
                                  MakeFactory<SpoolerGuardian>());
    client_node_->RegisterGuardianType("shell",
                                       MakeFactory<ShellGuardian>());
    client_node_->transmit_registry()
        .Register(kDocumentTypeName, DocumentDecoder())
        .ok();
    client_ = *client_node_->Create<ShellGuardian>("shell", "client", {});
  }

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 555;
    config.default_link.latency = Micros(100);
    return config;
  }

  RemoteReply Call(const PortName& to, const std::string& command,
                   ValueList args, const PortType& reply_type,
                   int attempts = 1) {
    RemoteCallOptions options;
    options.timeout = Millis(1000);
    options.max_attempts = attempts;
    auto reply = RemoteCall(*client_, to, command, std::move(args),
                            reply_type, options);
    EXPECT_TRUE(reply.ok()) << reply.status();
    return reply.ok() ? *reply : RemoteReply{};
  }

  System system_;
  NodeRuntime* server_ = nullptr;
  NodeRuntime* client_node_ = nullptr;
  Guardian* client_ = nullptr;
};

// --- catalog -----------------------------------------------------------------

TEST_F(ServicesTest, CatalogRegisterLookupUnregister) {
  auto catalog = server_->Create<CatalogGuardian>(
      CatalogGuardian::kTypeName, "catalog", {}, true);
  ASSERT_TRUE(catalog.ok());
  const PortName catalog_port = (*catalog)->ProvidedPorts()[0];

  PortName fake;
  fake.node = 9;
  fake.guardian = 9;
  fake.port_index = 0;
  fake.type_hash = 9;

  EXPECT_TRUE(CatalogRegister(*client_, catalog_port, "printer", fake,
                              Millis(1000))
                  .ok());
  auto found = CatalogLookup(*client_, catalog_port, "printer",
                             Millis(1000));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, fake);

  EXPECT_EQ(CatalogLookup(*client_, catalog_port, "nope", Millis(1000))
                .status()
                .code(),
            Code::kNotFound);

  // Same (name, port) again: idempotent. Different port: taken.
  EXPECT_TRUE(CatalogRegister(*client_, catalog_port, "printer", fake,
                              Millis(1000))
                  .ok());
  PortName other = fake;
  other.guardian = 10;
  EXPECT_EQ(CatalogRegister(*client_, catalog_port, "printer", other,
                            Millis(1000))
                .code(),
            Code::kAlreadyExists);

  auto removed = Call(catalog_port, "unregister", {Value::Str("printer")},
                      CatalogReplyType());
  EXPECT_EQ(removed.command, "removed");
  EXPECT_EQ(CatalogLookup(*client_, catalog_port, "printer", Millis(1000))
                .status()
                .code(),
            Code::kNotFound);
}

TEST_F(ServicesTest, CatalogListsByPrefix) {
  auto catalog = server_->Create<CatalogGuardian>(
      CatalogGuardian::kTypeName, "catalog", {}, false);
  ASSERT_TRUE(catalog.ok());
  const PortName port = (*catalog)->ProvidedPorts()[0];
  PortName p;
  p.node = 1;
  p.guardian = 2;
  ASSERT_TRUE(
      CatalogRegister(*client_, port, "svc/a", p, Millis(1000)).ok());
  ASSERT_TRUE(
      CatalogRegister(*client_, port, "svc/b", p, Millis(1000)).ok());
  ASSERT_TRUE(
      CatalogRegister(*client_, port, "other", p, Millis(1000)).ok());
  auto names = Call(port, "list_names", {Value::Str("svc/")},
                    CatalogReplyType());
  ASSERT_EQ(names.command, "names");
  EXPECT_EQ(names.args[0].items().size(), 2u);
}

TEST_F(ServicesTest, CatalogSurvivesCrash) {
  auto catalog = server_->Create<CatalogGuardian>(
      CatalogGuardian::kTypeName, "catalog", {}, true);
  ASSERT_TRUE(catalog.ok());
  const PortName catalog_port = (*catalog)->ProvidedPorts()[0];
  PortName p;
  p.node = 4;
  p.guardian = 5;
  ASSERT_TRUE(CatalogRegister(*client_, catalog_port, "durable", p,
                              Millis(1000))
                  .ok());
  ASSERT_TRUE(CatalogRegister(*client_, catalog_port, "gone", p,
                              Millis(1000))
                  .ok());
  Call(catalog_port, "unregister", {Value::Str("gone")},
       CatalogReplyType());

  server_->Crash();
  ASSERT_TRUE(server_->Restart().ok());

  auto found = CatalogLookup(*client_, catalog_port, "durable",
                             Millis(1000));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, p);
  EXPECT_EQ(CatalogLookup(*client_, catalog_port, "gone", Millis(1000))
                .status()
                .code(),
            Code::kNotFound);
}

// --- cabinet ------------------------------------------------------------------

TEST_F(ServicesTest, CabinetFileFetchAndTitleSearch) {
  auto cabinet = server_->Create<CabinetGuardian>(
      CabinetGuardian::kTypeName, "cab", {}, true);
  ASSERT_TRUE(cabinet.ok());
  const PortName port = (*cabinet)->ProvidedPorts()[0];

  auto filed = Call(port, "file_doc",
                    {Value::Abstract(MakeDocument("memo-184", {"guardians"}))},
                    CabinetReplyType());
  ASSERT_EQ(filed.command, "filed");
  const Token token = filed.args[0].token_value();

  auto fetched = Call(port, "fetch", {Value::OfToken(token)},
                      CabinetReplyType());
  ASSERT_EQ(fetched.command, "doc_is");
  auto doc = std::static_pointer_cast<const Document>(
      fetched.args[0].abstract_value());
  EXPECT_EQ(doc->title(), "memo-184");

  auto by_title = Call(port, "find_title", {Value::Str("memo-184")},
                       CabinetReplyType());
  EXPECT_EQ(by_title.command, "filed");
  auto missing = Call(port, "find_title", {Value::Str("nope")},
                      CabinetReplyType());
  EXPECT_EQ(missing.command, "unknown_title");
}

TEST_F(ServicesTest, CabinetDocumentsSurviveCrashTokensDoNot) {
  auto cabinet = server_->Create<CabinetGuardian>(
      CabinetGuardian::kTypeName, "cab", {}, true);
  ASSERT_TRUE(cabinet.ok());
  const PortName port = (*cabinet)->ProvidedPorts()[0];

  auto filed = Call(port, "file_doc",
                    {Value::Abstract(MakeDocument("keep", {"body text"}))},
                    CabinetReplyType());
  ASSERT_EQ(filed.command, "filed");
  const Token old_token = filed.args[0].token_value();

  server_->Crash();
  ASSERT_TRUE(server_->Restart().ok());

  // The document is still filed (permanence)...
  auto count = Call(port, "doc_count", {}, CabinetReplyType(), 3);
  ASSERT_EQ(count.command, "doc_count_is");
  EXPECT_EQ(count.args[0].int_value(), 1);
  // ...but the old token no longer unseals (new incarnation, new seal):
  auto stale = Call(port, "fetch", {Value::OfToken(old_token)},
                    CabinetReplyType());
  EXPECT_EQ(stale.command, "bad_token");
  // The recovery path: look up by title, get a fresh token, fetch.
  auto fresh = Call(port, "find_title", {Value::Str("keep")},
                    CabinetReplyType());
  ASSERT_EQ(fresh.command, "filed");
  auto fetched = Call(port, "fetch",
                      {Value::OfToken(fresh.args[0].token_value())},
                      CabinetReplyType());
  EXPECT_EQ(fetched.command, "doc_is");
}

// --- spooler ------------------------------------------------------------------

TEST_F(ServicesTest, SpoolerPrintsAndReportsStates) {
  auto spooler = server_->Create<SpoolerGuardian>(
      SpoolerGuardian::kTypeName, "spool", {Value::Int(2000)}, false);
  ASSERT_TRUE(spooler.ok());
  const PortName port = (*spooler)->ProvidedPorts()[0];

  auto queued = Call(port, "submit",
                     {Value::Abstract(MakeDocument("j1", {"five short words"
                                                          " here now"}))},
                     SpoolerReplyType());
  ASSERT_EQ(queued.command, "queued");
  const int64_t job = queued.args[0].int_value();

  // Eventually done.
  std::string state;
  const Deadline deadline(Millis(5000));
  while (!deadline.Expired()) {
    auto status = Call(port, "job_status", {Value::Int(job)},
                       SpoolerReplyType());
    state = status.args[0].string_value();
    if (state == "done") {
      break;
    }
    std::this_thread::sleep_for(Millis(5));
  }
  EXPECT_EQ(state, "done");
  EXPECT_EQ((*spooler)->printed(), 1u);

  auto unknown = Call(port, "job_status", {Value::Int(999)},
                      SpoolerReplyType());
  EXPECT_EQ(unknown.command, "unknown_job");
}

TEST_F(ServicesTest, SpoolerCancelQueuedButNotDone) {
  auto spooler = server_->Create<SpoolerGuardian>(
      SpoolerGuardian::kTypeName, "spool", {Value::Int(20000)}, false);
  ASSERT_TRUE(spooler.ok());
  const PortName port = (*spooler)->ProvidedPorts()[0];

  // First job hogs the printer; the second sits queued and is cancelable.
  auto first = Call(port, "submit",
                    {Value::Abstract(MakeDocument(
                        "slow", {std::string(400, 'a') + " word word word"}))},
                    SpoolerReplyType());
  ASSERT_EQ(first.command, "queued");
  auto second = Call(port, "submit",
                     {Value::Abstract(MakeDocument("victim", {"text"}))},
                     SpoolerReplyType());
  ASSERT_EQ(second.command, "queued");

  auto canceled = Call(port, "cancel_job",
                       {Value::Int(second.args[0].int_value())},
                       SpoolerReplyType());
  EXPECT_EQ(canceled.command, "canceled_job");
  auto state = Call(port, "job_status",
                    {Value::Int(second.args[0].int_value())},
                    SpoolerReplyType());
  EXPECT_EQ(state.args[0].string_value(), "canceled");

  // Cancelling the in-flight/done first job is too late.
  auto late = Call(port, "cancel_job",
                   {Value::Int(first.args[0].int_value())},
                   SpoolerReplyType());
  EXPECT_EQ(late.command, "too_late");
}

// --- dispatch & typed sends -----------------------------------------------------

PortType CounterPortType() {
  return PortType("counter",
                  {MessageSig{"add", {ArgType::Of(TypeTag::kInt)}, {}},
                   MessageSig{"get", {}, {"count_is"}}});
}

TEST_F(ServicesTest, DispatchLoopHandlesCommandsAndTimeouts) {
  Port* port = client_->AddPort(CounterPortType(), 16);
  int64_t counter = 0;
  int timeouts = 0;
  Dispatch dispatch;
  dispatch.When("add",
                [&](const Received& m) { counter += m.args[0].int_value(); })
      .When("get",
            [&](const Received& m) {
              if (!m.reply_to.IsNull()) {
                Status st = client_->Send(m.reply_to, "count_is",
                                          {Value::Int(counter)});
                (void)st;
              }
              dispatch.Stop();
            })
      .OnTimeout([&] { ++timeouts; });
  EXPECT_TRUE(dispatch.CheckCovers(CounterPortType()).ok());

  std::thread server([&] {
    Status st = dispatch.Loop(*client_, {port}, Millis(20));
    EXPECT_TRUE(st.ok());
  });
  // Let at least one timeout tick happen, then drive it.
  std::this_thread::sleep_for(Millis(50));
  ASSERT_TRUE(TypedSend(*client_, port->name(), "add", 5).ok());
  ASSERT_TRUE(TypedSend(*client_, port->name(), "add", 37).ok());
  Port* reply_port = client_->AddPort(
      PortType("count_reply",
               {MessageSig{"count_is", {ArgType::Of(TypeTag::kInt)}, {}}}),
      4);
  ASSERT_TRUE(TypedSendReply(*client_, port->name(), reply_port->name(),
                             "get")
                  .ok());
  server.join();
  auto reply = client_->Receive(reply_port, Millis(1000));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->args[0].int_value(), 42);
  EXPECT_GT(timeouts, 0);
}

TEST_F(ServicesTest, DispatchCoverageCheckCatchesGaps) {
  Dispatch partial;
  partial.When("add", [](const Received&) {});
  EXPECT_EQ(partial.CheckCovers(CounterPortType()).code(), Code::kTypeError);

  Dispatch extra;
  extra.When("add", [](const Received&) {})
      .When("get", [](const Received&) {})
      .When("bogus", [](const Received&) {});
  EXPECT_EQ(extra.CheckCovers(CounterPortType()).code(), Code::kTypeError);
}

TEST_F(ServicesTest, TypedSendMapsCppTypes) {
  ValueList args = MakeArgs(true, 7, 2.5, "text", PortName{1, 2, 3, 4},
                            Token{1, 2, 3});
  ASSERT_EQ(args.size(), 6u);
  EXPECT_EQ(args[0].tag(), TypeTag::kBool);
  EXPECT_EQ(args[1].tag(), TypeTag::kInt);
  EXPECT_EQ(args[2].tag(), TypeTag::kReal);
  EXPECT_EQ(args[3].tag(), TypeTag::kString);
  EXPECT_EQ(args[4].tag(), TypeTag::kPortName);
  EXPECT_EQ(args[5].tag(), TypeTag::kToken);
}

}  // namespace
}  // namespace guardians
