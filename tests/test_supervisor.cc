// The node supervisor: autonomous restart of crashed nodes, quarantine of
// crash-looping ones, and the quarantine-aware FailoverCall ordering.
#include <gtest/gtest.h>

#include <thread>

#include "src/airline/flight_guardian.h"
#include "src/airline/types.h"
#include "src/fault/crashpoint.h"
#include "src/fault/supervisor.h"
#include "src/guardian/system.h"
#include "src/sendprims/failover.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

SystemConfig MakeConfig() {
  SystemConfig config;
  config.seed = 1979;
  config.default_link.latency = Micros(100);
  return config;
}

SupervisorConfig FastConfig() {
  SupervisorConfig config;
  config.poll_interval = Millis(2);
  config.initial_backoff = Millis(2);
  config.max_backoff = Millis(50);
  config.rapid_window = Millis(2000);
  config.quarantine_strikes = 3;
  return config;
}

FlightGuardian* MakeFlight(NodeRuntime& node, const std::string& name,
                           int64_t flight_no) {
  FlightConfig config;
  config.flight_no = flight_no;
  config.capacity = 100;
  auto flight = node.Create<FlightGuardian>("flight", name, config.ToArgs(),
                                            /*persistent=*/true);
  EXPECT_TRUE(flight.ok()) << flight.status();
  return *flight;
}

TEST(SupervisorTest, RestartsACrashedNodeAutonomously) {
  System system(MakeConfig());
  NodeRuntime& region = system.AddNode("region");
  NodeRuntime& client = system.AddNode("client");
  region.RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  client.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  Guardian* clerk = *client.Create<ShellGuardian>("shell", "clerk", {});
  FlightGuardian* flight = MakeFlight(region, "f1", 1);
  const PortName port = flight->ProvidedPorts()[0];

  Supervisor supervisor(&system, FastConfig());
  supervisor.Ignore(client.id());
  supervisor.Start();

  // Crash the region from *inside* the reserve's log-then-reply window.
  // The test never calls Restart(); the clerk's retries must ride out the
  // supervised recovery on their own.
  NodeRuntime* region_ptr = &region;
  ASSERT_TRUE(FaultInjector::Instance()
                  .Arm({"flight.reserve.after_log", 1}, region_ptr,
                       [region_ptr] { region_ptr->BeginCrash(); })
                  .ok());
  RemoteCallOptions options;
  options.timeout = Millis(250);
  options.max_attempts = 8;
  auto reply = RemoteCall(*clerk, port, "reserve",
                          {Value::Str("smith"), Value::Str("d1")},
                          ReservationReplyType(), options);
  EXPECT_TRUE(FaultInjector::Instance().triggered());
  FaultInjector::Instance().Disarm();
  ASSERT_TRUE(reply.ok()) << reply.status();
  // The crash hit after the log write, so the retry finds it reserved.
  EXPECT_TRUE(reply->command == "ok" || reply->command == "pre_reserved")
      << reply->command;

  EXPECT_TRUE(region.IsUp());
  EXPECT_GE(supervisor.Health(region.id()).restarts, 1u);
  EXPECT_FALSE(supervisor.IsQuarantined(region.id()));
  EXPECT_GE(system.metrics().counter("supervisor.restarts")->value(), 1u);

  // The acked state survived into the supervised incarnation.
  auto* recovered =
      dynamic_cast<FlightGuardian*>(region.FindGuardian(port.guardian));
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(recovered->SnapshotDb().IsReserved("smith", "d1"));
}

TEST(SupervisorTest, QuarantinesANodeWhoseRecoveryKeepsFailing) {
  System system(MakeConfig());
  NodeRuntime& node = system.AddNode("sick");
  node.RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  // Two persistent creations so the meta log has a frame *after* the one
  // we corrupt — mid-stream corruption, which recovery correctly refuses
  // to repair (kLogCorrupt), so every restart attempt fails.
  MakeFlight(node, "f1", 1);
  MakeFlight(node, "f2", 2);
  node.Crash();
  StableStore& store = node.stable_store();
  Bytes raw = store.Read("node/meta.log");
  ASSERT_GT(raw.size(), 16u);
  raw[10] ^= 0xFF;  // payload byte of the first frame
  store.Delete("node/meta.log");
  ASSERT_TRUE(store.Append("node/meta.log", raw).ok());

  Supervisor supervisor(&system, FastConfig());
  supervisor.Start();

  Deadline deadline(Millis(5000));
  while (!supervisor.IsQuarantined(node.id()) && !deadline.Expired()) {
    std::this_thread::sleep_for(Millis(5));
  }
  ASSERT_TRUE(supervisor.IsQuarantined(node.id()));
  const auto health = supervisor.Health(node.id());
  EXPECT_GE(health.strikes, 3);
  EXPECT_EQ(health.restarts, 0u);
  EXPECT_FALSE(node.IsUp());
  EXPECT_GE(system.metrics().counter("supervisor.restart_failures")->value(),
            2u);
  EXPECT_EQ(system.metrics().counter("supervisor.quarantined")->value(), 1u);
  // Quarantine is sticky: the supervisor leaves the node alone now.
  std::this_thread::sleep_for(Millis(20));
  EXPECT_FALSE(node.IsUp());
}

TEST(SupervisorTest, FailoverCallDemotesQuarantinedReplica) {
  System system(MakeConfig());
  NodeRuntime& r0 = system.AddNode("r0");
  NodeRuntime& r1 = system.AddNode("r1");
  NodeRuntime& client = system.AddNode("client");
  r0.RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  r1.RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  client.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  Guardian* clerk = *client.Create<ShellGuardian>("shell", "clerk", {});
  const PortName p0 = MakeFlight(r0, "f", 7)->ProvidedPorts()[0];
  const PortName p1 = MakeFlight(r1, "f", 7)->ProvidedPorts()[0];

  Supervisor supervisor(&system, FastConfig());  // oracle installed, not
                                                 // started: r0 stays down
  r0.Crash();
  supervisor.ForceQuarantine(r0.id());

  RemoteCallOptions per_target;
  per_target.timeout = Millis(250);
  per_target.max_attempts = 1;
  const TimePoint t0 = Now();
  auto result = FailoverCall(*clerk, {p0, p1}, "flight_stats",
                             {Value::Str("manager")},
                             ReservationReplyType(), per_target);
  const Micros elapsed{ToMicros(Now() - t0)};
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->reply.command, "stats_info");
  // The healthy replica was tried FIRST, so the answer indexes the
  // caller's original list and no per-target timeout was burned.
  EXPECT_EQ(result->target_index, 1);
  EXPECT_LT(elapsed, Millis(200));
  EXPECT_EQ(
      system.metrics().counter("sendprims.failover.quarantine_skips")->value(),
      1u);
  EXPECT_EQ(system.metrics().counter("sendprims.failover.failovers")->value(),
            0u);

  // Quarantine lifted: the original order applies again.
  supervisor.ClearQuarantine(r0.id());
  ASSERT_TRUE(r0.Restart().ok());
  auto back = FailoverCall(*clerk, {p0, p1}, "flight_stats",
                           {Value::Str("manager")},
                           ReservationReplyType(), per_target);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->target_index, 0);
}

}  // namespace
}  // namespace guardians
