file(REMOVE_RECURSE
  "libguardians_wire.a"
)
