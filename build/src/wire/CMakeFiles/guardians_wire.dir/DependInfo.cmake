
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/codec.cc" "src/wire/CMakeFiles/guardians_wire.dir/codec.cc.o" "gcc" "src/wire/CMakeFiles/guardians_wire.dir/codec.cc.o.d"
  "/root/repo/src/wire/crc32.cc" "src/wire/CMakeFiles/guardians_wire.dir/crc32.cc.o" "gcc" "src/wire/CMakeFiles/guardians_wire.dir/crc32.cc.o.d"
  "/root/repo/src/wire/envelope.cc" "src/wire/CMakeFiles/guardians_wire.dir/envelope.cc.o" "gcc" "src/wire/CMakeFiles/guardians_wire.dir/envelope.cc.o.d"
  "/root/repo/src/wire/limits.cc" "src/wire/CMakeFiles/guardians_wire.dir/limits.cc.o" "gcc" "src/wire/CMakeFiles/guardians_wire.dir/limits.cc.o.d"
  "/root/repo/src/wire/packet.cc" "src/wire/CMakeFiles/guardians_wire.dir/packet.cc.o" "gcc" "src/wire/CMakeFiles/guardians_wire.dir/packet.cc.o.d"
  "/root/repo/src/wire/value_codec.cc" "src/wire/CMakeFiles/guardians_wire.dir/value_codec.cc.o" "gcc" "src/wire/CMakeFiles/guardians_wire.dir/value_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/value/CMakeFiles/guardians_value.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/guardians_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
