# Empty compiler generated dependencies file for guardians_wire.
# This may be replaced when dependencies are built.
