file(REMOVE_RECURSE
  "CMakeFiles/guardians_wire.dir/codec.cc.o"
  "CMakeFiles/guardians_wire.dir/codec.cc.o.d"
  "CMakeFiles/guardians_wire.dir/crc32.cc.o"
  "CMakeFiles/guardians_wire.dir/crc32.cc.o.d"
  "CMakeFiles/guardians_wire.dir/envelope.cc.o"
  "CMakeFiles/guardians_wire.dir/envelope.cc.o.d"
  "CMakeFiles/guardians_wire.dir/limits.cc.o"
  "CMakeFiles/guardians_wire.dir/limits.cc.o.d"
  "CMakeFiles/guardians_wire.dir/packet.cc.o"
  "CMakeFiles/guardians_wire.dir/packet.cc.o.d"
  "CMakeFiles/guardians_wire.dir/value_codec.cc.o"
  "CMakeFiles/guardians_wire.dir/value_codec.cc.o.d"
  "libguardians_wire.a"
  "libguardians_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
