# Empty compiler generated dependencies file for guardians_store.
# This may be replaced when dependencies are built.
