file(REMOVE_RECURSE
  "libguardians_store.a"
)
