file(REMOVE_RECURSE
  "CMakeFiles/guardians_store.dir/stable_store.cc.o"
  "CMakeFiles/guardians_store.dir/stable_store.cc.o.d"
  "CMakeFiles/guardians_store.dir/wal.cc.o"
  "CMakeFiles/guardians_store.dir/wal.cc.o.d"
  "libguardians_store.a"
  "libguardians_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
