file(REMOVE_RECURSE
  "CMakeFiles/guardians_sendprims.dir/failover.cc.o"
  "CMakeFiles/guardians_sendprims.dir/failover.cc.o.d"
  "CMakeFiles/guardians_sendprims.dir/reliable_send.cc.o"
  "CMakeFiles/guardians_sendprims.dir/reliable_send.cc.o.d"
  "CMakeFiles/guardians_sendprims.dir/remote_call.cc.o"
  "CMakeFiles/guardians_sendprims.dir/remote_call.cc.o.d"
  "CMakeFiles/guardians_sendprims.dir/sync_send.cc.o"
  "CMakeFiles/guardians_sendprims.dir/sync_send.cc.o.d"
  "libguardians_sendprims.a"
  "libguardians_sendprims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_sendprims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
