# Empty compiler generated dependencies file for guardians_sendprims.
# This may be replaced when dependencies are built.
