file(REMOVE_RECURSE
  "libguardians_sendprims.a"
)
