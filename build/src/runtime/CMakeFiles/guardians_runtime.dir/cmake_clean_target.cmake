file(REMOVE_RECURSE
  "libguardians_runtime.a"
)
