file(REMOVE_RECURSE
  "CMakeFiles/guardians_runtime.dir/process.cc.o"
  "CMakeFiles/guardians_runtime.dir/process.cc.o.d"
  "CMakeFiles/guardians_runtime.dir/serializer.cc.o"
  "CMakeFiles/guardians_runtime.dir/serializer.cc.o.d"
  "libguardians_runtime.a"
  "libguardians_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
