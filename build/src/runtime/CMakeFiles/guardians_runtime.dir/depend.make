# Empty dependencies file for guardians_runtime.
# This may be replaced when dependencies are built.
