file(REMOVE_RECURSE
  "CMakeFiles/guardians_airline.dir/airline_system.cc.o"
  "CMakeFiles/guardians_airline.dir/airline_system.cc.o.d"
  "CMakeFiles/guardians_airline.dir/flight_db.cc.o"
  "CMakeFiles/guardians_airline.dir/flight_db.cc.o.d"
  "CMakeFiles/guardians_airline.dir/flight_guardian.cc.o"
  "CMakeFiles/guardians_airline.dir/flight_guardian.cc.o.d"
  "CMakeFiles/guardians_airline.dir/regional_manager.cc.o"
  "CMakeFiles/guardians_airline.dir/regional_manager.cc.o.d"
  "CMakeFiles/guardians_airline.dir/types.cc.o"
  "CMakeFiles/guardians_airline.dir/types.cc.o.d"
  "CMakeFiles/guardians_airline.dir/user_guardian.cc.o"
  "CMakeFiles/guardians_airline.dir/user_guardian.cc.o.d"
  "CMakeFiles/guardians_airline.dir/workload.cc.o"
  "CMakeFiles/guardians_airline.dir/workload.cc.o.d"
  "libguardians_airline.a"
  "libguardians_airline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_airline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
