
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/airline/airline_system.cc" "src/airline/CMakeFiles/guardians_airline.dir/airline_system.cc.o" "gcc" "src/airline/CMakeFiles/guardians_airline.dir/airline_system.cc.o.d"
  "/root/repo/src/airline/flight_db.cc" "src/airline/CMakeFiles/guardians_airline.dir/flight_db.cc.o" "gcc" "src/airline/CMakeFiles/guardians_airline.dir/flight_db.cc.o.d"
  "/root/repo/src/airline/flight_guardian.cc" "src/airline/CMakeFiles/guardians_airline.dir/flight_guardian.cc.o" "gcc" "src/airline/CMakeFiles/guardians_airline.dir/flight_guardian.cc.o.d"
  "/root/repo/src/airline/regional_manager.cc" "src/airline/CMakeFiles/guardians_airline.dir/regional_manager.cc.o" "gcc" "src/airline/CMakeFiles/guardians_airline.dir/regional_manager.cc.o.d"
  "/root/repo/src/airline/types.cc" "src/airline/CMakeFiles/guardians_airline.dir/types.cc.o" "gcc" "src/airline/CMakeFiles/guardians_airline.dir/types.cc.o.d"
  "/root/repo/src/airline/user_guardian.cc" "src/airline/CMakeFiles/guardians_airline.dir/user_guardian.cc.o" "gcc" "src/airline/CMakeFiles/guardians_airline.dir/user_guardian.cc.o.d"
  "/root/repo/src/airline/workload.cc" "src/airline/CMakeFiles/guardians_airline.dir/workload.cc.o" "gcc" "src/airline/CMakeFiles/guardians_airline.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guardian/CMakeFiles/guardians_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sendprims/CMakeFiles/guardians_sendprims.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/guardians_net.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/guardians_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/guardians_store.dir/DependInfo.cmake"
  "/root/repo/build/src/transmit/CMakeFiles/guardians_transmit.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/guardians_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/guardians_value.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/guardians_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
