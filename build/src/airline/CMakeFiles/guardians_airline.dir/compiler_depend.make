# Empty compiler generated dependencies file for guardians_airline.
# This may be replaced when dependencies are built.
