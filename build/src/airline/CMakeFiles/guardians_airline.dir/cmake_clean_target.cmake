file(REMOVE_RECURSE
  "libguardians_airline.a"
)
