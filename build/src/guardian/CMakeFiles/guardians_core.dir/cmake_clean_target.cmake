file(REMOVE_RECURSE
  "libguardians_core.a"
)
