file(REMOVE_RECURSE
  "CMakeFiles/guardians_core.dir/acl.cc.o"
  "CMakeFiles/guardians_core.dir/acl.cc.o.d"
  "CMakeFiles/guardians_core.dir/guardian.cc.o"
  "CMakeFiles/guardians_core.dir/guardian.cc.o.d"
  "CMakeFiles/guardians_core.dir/node_runtime.cc.o"
  "CMakeFiles/guardians_core.dir/node_runtime.cc.o.d"
  "CMakeFiles/guardians_core.dir/port.cc.o"
  "CMakeFiles/guardians_core.dir/port.cc.o.d"
  "CMakeFiles/guardians_core.dir/port_registry.cc.o"
  "CMakeFiles/guardians_core.dir/port_registry.cc.o.d"
  "CMakeFiles/guardians_core.dir/system.cc.o"
  "CMakeFiles/guardians_core.dir/system.cc.o.d"
  "libguardians_core.a"
  "libguardians_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
