# Empty compiler generated dependencies file for guardians_core.
# This may be replaced when dependencies are built.
