file(REMOVE_RECURSE
  "libguardians_transmit.a"
)
