file(REMOVE_RECURSE
  "CMakeFiles/guardians_transmit.dir/assoc_memory.cc.o"
  "CMakeFiles/guardians_transmit.dir/assoc_memory.cc.o.d"
  "CMakeFiles/guardians_transmit.dir/complex.cc.o"
  "CMakeFiles/guardians_transmit.dir/complex.cc.o.d"
  "CMakeFiles/guardians_transmit.dir/document.cc.o"
  "CMakeFiles/guardians_transmit.dir/document.cc.o.d"
  "CMakeFiles/guardians_transmit.dir/registry.cc.o"
  "CMakeFiles/guardians_transmit.dir/registry.cc.o.d"
  "libguardians_transmit.a"
  "libguardians_transmit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_transmit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
