# Empty dependencies file for guardians_transmit.
# This may be replaced when dependencies are built.
