file(REMOVE_RECURSE
  "CMakeFiles/guardians_value.dir/port_type.cc.o"
  "CMakeFiles/guardians_value.dir/port_type.cc.o.d"
  "CMakeFiles/guardians_value.dir/value.cc.o"
  "CMakeFiles/guardians_value.dir/value.cc.o.d"
  "libguardians_value.a"
  "libguardians_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
