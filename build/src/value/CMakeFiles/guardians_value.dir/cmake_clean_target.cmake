file(REMOVE_RECURSE
  "libguardians_value.a"
)
