# Empty dependencies file for guardians_value.
# This may be replaced when dependencies are built.
