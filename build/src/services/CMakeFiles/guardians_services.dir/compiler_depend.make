# Empty compiler generated dependencies file for guardians_services.
# This may be replaced when dependencies are built.
