file(REMOVE_RECURSE
  "CMakeFiles/guardians_services.dir/cabinet.cc.o"
  "CMakeFiles/guardians_services.dir/cabinet.cc.o.d"
  "CMakeFiles/guardians_services.dir/catalog.cc.o"
  "CMakeFiles/guardians_services.dir/catalog.cc.o.d"
  "CMakeFiles/guardians_services.dir/spooler.cc.o"
  "CMakeFiles/guardians_services.dir/spooler.cc.o.d"
  "libguardians_services.a"
  "libguardians_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
