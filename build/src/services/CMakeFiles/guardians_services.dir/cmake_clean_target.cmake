file(REMOVE_RECURSE
  "libguardians_services.a"
)
