# Empty dependencies file for guardians_common.
# This may be replaced when dependencies are built.
