file(REMOVE_RECURSE
  "libguardians_common.a"
)
