file(REMOVE_RECURSE
  "CMakeFiles/guardians_common.dir/bytes.cc.o"
  "CMakeFiles/guardians_common.dir/bytes.cc.o.d"
  "CMakeFiles/guardians_common.dir/log.cc.o"
  "CMakeFiles/guardians_common.dir/log.cc.o.d"
  "CMakeFiles/guardians_common.dir/rng.cc.o"
  "CMakeFiles/guardians_common.dir/rng.cc.o.d"
  "CMakeFiles/guardians_common.dir/status.cc.o"
  "CMakeFiles/guardians_common.dir/status.cc.o.d"
  "libguardians_common.a"
  "libguardians_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
