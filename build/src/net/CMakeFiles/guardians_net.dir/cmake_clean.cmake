file(REMOVE_RECURSE
  "CMakeFiles/guardians_net.dir/network.cc.o"
  "CMakeFiles/guardians_net.dir/network.cc.o.d"
  "CMakeFiles/guardians_net.dir/topology.cc.o"
  "CMakeFiles/guardians_net.dir/topology.cc.o.d"
  "libguardians_net.a"
  "libguardians_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
