file(REMOVE_RECURSE
  "libguardians_net.a"
)
