# Empty compiler generated dependencies file for guardians_net.
# This may be replaced when dependencies are built.
