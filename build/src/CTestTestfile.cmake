# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("value")
subdirs("wire")
subdirs("net")
subdirs("runtime")
subdirs("store")
subdirs("transmit")
subdirs("guardian")
subdirs("sendprims")
subdirs("services")
subdirs("airline")
subdirs("bank")
