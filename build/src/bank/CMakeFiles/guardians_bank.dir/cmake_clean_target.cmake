file(REMOVE_RECURSE
  "libguardians_bank.a"
)
