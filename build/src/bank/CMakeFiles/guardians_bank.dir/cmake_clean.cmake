file(REMOVE_RECURSE
  "CMakeFiles/guardians_bank.dir/account_guardian.cc.o"
  "CMakeFiles/guardians_bank.dir/account_guardian.cc.o.d"
  "CMakeFiles/guardians_bank.dir/branch_guardian.cc.o"
  "CMakeFiles/guardians_bank.dir/branch_guardian.cc.o.d"
  "libguardians_bank.a"
  "libguardians_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardians_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
