# Empty compiler generated dependencies file for guardians_bank.
# This may be replaced when dependencies are built.
