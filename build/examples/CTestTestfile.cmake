# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_airline_demo "/root/repo/build/examples/airline_demo")
set_tests_properties(example_airline_demo PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank_demo "/root/repo/build/examples/bank_demo")
set_tests_properties(example_bank_demo PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_office_mail "/root/repo/build/examples/office_mail")
set_tests_properties(example_office_mail PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_office_day "/root/repo/build/examples/office_day")
set_tests_properties(example_office_day PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
