# Empty dependencies file for airline_demo.
# This may be replaced when dependencies are built.
