# Empty compiler generated dependencies file for office_day.
# This may be replaced when dependencies are built.
