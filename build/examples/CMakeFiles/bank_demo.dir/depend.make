# Empty dependencies file for bank_demo.
# This may be replaced when dependencies are built.
