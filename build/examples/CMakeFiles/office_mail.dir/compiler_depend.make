# Empty compiler generated dependencies file for office_mail.
# This may be replaced when dependencies are built.
