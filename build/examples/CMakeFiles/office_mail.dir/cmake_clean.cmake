file(REMOVE_RECURSE
  "CMakeFiles/office_mail.dir/office_mail.cpp.o"
  "CMakeFiles/office_mail.dir/office_mail.cpp.o.d"
  "office_mail"
  "office_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
