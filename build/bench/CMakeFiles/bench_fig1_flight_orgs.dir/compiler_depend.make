# Empty compiler generated dependencies file for bench_fig1_flight_orgs.
# This may be replaced when dependencies are built.
