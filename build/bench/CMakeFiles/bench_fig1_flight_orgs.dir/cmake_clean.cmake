file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_flight_orgs.dir/bench_fig1_flight_orgs.cc.o"
  "CMakeFiles/bench_fig1_flight_orgs.dir/bench_fig1_flight_orgs.cc.o.d"
  "bench_fig1_flight_orgs"
  "bench_fig1_flight_orgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_flight_orgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
