file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_creation.dir/bench_fig3_creation.cc.o"
  "CMakeFiles/bench_fig3_creation.dir/bench_fig3_creation.cc.o.d"
  "bench_fig3_creation"
  "bench_fig3_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
