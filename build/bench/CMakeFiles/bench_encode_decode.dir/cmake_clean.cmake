file(REMOVE_RECURSE
  "CMakeFiles/bench_encode_decode.dir/bench_encode_decode.cc.o"
  "CMakeFiles/bench_encode_decode.dir/bench_encode_decode.cc.o.d"
  "bench_encode_decode"
  "bench_encode_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encode_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
