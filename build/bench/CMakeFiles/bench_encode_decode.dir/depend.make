# Empty dependencies file for bench_encode_decode.
# This may be replaced when dependencies are built.
