file(REMOVE_RECURSE
  "CMakeFiles/bench_send_primitives.dir/bench_send_primitives.cc.o"
  "CMakeFiles/bench_send_primitives.dir/bench_send_primitives.cc.o.d"
  "bench_send_primitives"
  "bench_send_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_send_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
