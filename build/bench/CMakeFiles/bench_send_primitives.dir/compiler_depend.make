# Empty compiler generated dependencies file for bench_send_primitives.
# This may be replaced when dependencies are built.
