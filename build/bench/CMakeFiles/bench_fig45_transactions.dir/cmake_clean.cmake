file(REMOVE_RECURSE
  "CMakeFiles/bench_fig45_transactions.dir/bench_fig45_transactions.cc.o"
  "CMakeFiles/bench_fig45_transactions.dir/bench_fig45_transactions.cc.o.d"
  "bench_fig45_transactions"
  "bench_fig45_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig45_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
