file(REMOVE_RECURSE
  "CMakeFiles/bench_ports.dir/bench_ports.cc.o"
  "CMakeFiles/bench_ports.dir/bench_ports.cc.o.d"
  "bench_ports"
  "bench_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
