# Empty dependencies file for test_airline_admin.
# This may be replaced when dependencies are built.
