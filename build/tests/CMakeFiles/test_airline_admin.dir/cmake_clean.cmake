file(REMOVE_RECURSE
  "CMakeFiles/test_airline_admin.dir/test_airline_admin.cc.o"
  "CMakeFiles/test_airline_admin.dir/test_airline_admin.cc.o.d"
  "test_airline_admin"
  "test_airline_admin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_airline_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
