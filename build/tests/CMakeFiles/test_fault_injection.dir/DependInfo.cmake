
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fault_injection.cc" "tests/CMakeFiles/test_fault_injection.dir/test_fault_injection.cc.o" "gcc" "tests/CMakeFiles/test_fault_injection.dir/test_fault_injection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guardian/CMakeFiles/guardians_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sendprims/CMakeFiles/guardians_sendprims.dir/DependInfo.cmake"
  "/root/repo/build/src/airline/CMakeFiles/guardians_airline.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/guardians_services.dir/DependInfo.cmake"
  "/root/repo/build/src/bank/CMakeFiles/guardians_bank.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/guardians_net.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/guardians_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/guardians_store.dir/DependInfo.cmake"
  "/root/repo/build/src/transmit/CMakeFiles/guardians_transmit.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/guardians_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/guardians_value.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/guardians_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
