file(REMOVE_RECURSE
  "CMakeFiles/test_flight_db.dir/test_flight_db.cc.o"
  "CMakeFiles/test_flight_db.dir/test_flight_db.cc.o.d"
  "test_flight_db"
  "test_flight_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flight_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
