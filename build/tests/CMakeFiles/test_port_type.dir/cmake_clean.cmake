file(REMOVE_RECURSE
  "CMakeFiles/test_port_type.dir/test_port_type.cc.o"
  "CMakeFiles/test_port_type.dir/test_port_type.cc.o.d"
  "test_port_type"
  "test_port_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_port_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
