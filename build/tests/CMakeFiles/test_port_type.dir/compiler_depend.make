# Empty compiler generated dependencies file for test_port_type.
# This may be replaced when dependencies are built.
