# Empty dependencies file for test_guardian_comm.
# This may be replaced when dependencies are built.
