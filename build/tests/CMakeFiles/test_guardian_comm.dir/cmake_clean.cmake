file(REMOVE_RECURSE
  "CMakeFiles/test_guardian_comm.dir/test_guardian_comm.cc.o"
  "CMakeFiles/test_guardian_comm.dir/test_guardian_comm.cc.o.d"
  "test_guardian_comm"
  "test_guardian_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guardian_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
