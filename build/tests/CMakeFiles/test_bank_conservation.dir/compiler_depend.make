# Empty compiler generated dependencies file for test_bank_conservation.
# This may be replaced when dependencies are built.
