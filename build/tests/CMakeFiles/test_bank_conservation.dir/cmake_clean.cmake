file(REMOVE_RECURSE
  "CMakeFiles/test_bank_conservation.dir/test_bank_conservation.cc.o"
  "CMakeFiles/test_bank_conservation.dir/test_bank_conservation.cc.o.d"
  "test_bank_conservation"
  "test_bank_conservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bank_conservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
