file(REMOVE_RECURSE
  "CMakeFiles/test_fig5_semantics.dir/test_fig5_semantics.cc.o"
  "CMakeFiles/test_fig5_semantics.dir/test_fig5_semantics.cc.o.d"
  "test_fig5_semantics"
  "test_fig5_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig5_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
