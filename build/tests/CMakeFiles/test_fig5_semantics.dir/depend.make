# Empty dependencies file for test_fig5_semantics.
# This may be replaced when dependencies are built.
