# Empty compiler generated dependencies file for test_node_runtime.
# This may be replaced when dependencies are built.
