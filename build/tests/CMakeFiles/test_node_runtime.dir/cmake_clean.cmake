file(REMOVE_RECURSE
  "CMakeFiles/test_node_runtime.dir/test_node_runtime.cc.o"
  "CMakeFiles/test_node_runtime.dir/test_node_runtime.cc.o.d"
  "test_node_runtime"
  "test_node_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
