# Empty dependencies file for test_bank_integration.
# This may be replaced when dependencies are built.
