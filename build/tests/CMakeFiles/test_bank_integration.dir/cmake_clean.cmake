file(REMOVE_RECURSE
  "CMakeFiles/test_bank_integration.dir/test_bank_integration.cc.o"
  "CMakeFiles/test_bank_integration.dir/test_bank_integration.cc.o.d"
  "test_bank_integration"
  "test_bank_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bank_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
