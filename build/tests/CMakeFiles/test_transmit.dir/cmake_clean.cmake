file(REMOVE_RECURSE
  "CMakeFiles/test_transmit.dir/test_transmit.cc.o"
  "CMakeFiles/test_transmit.dir/test_transmit.cc.o.d"
  "test_transmit"
  "test_transmit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transmit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
