# Empty dependencies file for test_airline_integration.
# This may be replaced when dependencies are built.
