file(REMOVE_RECURSE
  "CMakeFiles/test_airline_integration.dir/test_airline_integration.cc.o"
  "CMakeFiles/test_airline_integration.dir/test_airline_integration.cc.o.d"
  "test_airline_integration"
  "test_airline_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_airline_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
