# Empty dependencies file for test_reliable_and_topology.
# This may be replaced when dependencies are built.
