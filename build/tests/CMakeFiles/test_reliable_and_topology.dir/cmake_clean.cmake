file(REMOVE_RECURSE
  "CMakeFiles/test_reliable_and_topology.dir/test_reliable_and_topology.cc.o"
  "CMakeFiles/test_reliable_and_topology.dir/test_reliable_and_topology.cc.o.d"
  "test_reliable_and_topology"
  "test_reliable_and_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reliable_and_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
