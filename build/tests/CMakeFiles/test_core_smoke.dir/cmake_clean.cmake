file(REMOVE_RECURSE
  "CMakeFiles/test_core_smoke.dir/test_core_smoke.cc.o"
  "CMakeFiles/test_core_smoke.dir/test_core_smoke.cc.o.d"
  "test_core_smoke"
  "test_core_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
