file(REMOVE_RECURSE
  "CMakeFiles/test_concurrency_props.dir/test_concurrency_props.cc.o"
  "CMakeFiles/test_concurrency_props.dir/test_concurrency_props.cc.o.d"
  "test_concurrency_props"
  "test_concurrency_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrency_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
