# Empty dependencies file for test_concurrency_props.
# This may be replaced when dependencies are built.
