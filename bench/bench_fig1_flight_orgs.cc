// Experiment FIG1 — Figure 1: the three flight-guardian organizations.
//
// Paper claim: "Organizations 2 and 3 can provide concurrent manipulation
// of the data base, while organization 1 cannot."
//
// Workload: C concurrent clerks issue reserve requests spread over D
// distinct dates against one flight guardian whose per-request service time
// is fixed. With D > 1, the serializer (1b) and monitor-fork (1c)
// organizations overlap requests for different dates; one-at-a-time (1a)
// cannot. With D == 1 all three serialize and the organizations converge.
//
// Expected shape: throughput(1b), throughput(1c) ≈ min(C, D, workers) ×
// throughput(1a) for D > 1; equal for D == 1.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"

namespace guardians {
namespace {

void BM_FlightOrganization(benchmark::State& state) {
  const auto organization = static_cast<FlightOrganization>(state.range(0));
  const int clerks = static_cast<int>(state.range(1));
  const int dates_count = static_cast<int>(state.range(2));
  const int requests_per_clerk = 24;

  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 42;
    config.default_link.latency = Micros(50);
    auto world = std::make_unique<BenchWorld>(config);
    NodeRuntime& node = world->system.AddNode("airline");
    node.RegisterGuardianType("flight", MakeFactory<FlightGuardian>());

    FlightConfig flight_config;
    flight_config.flight_no = 1;
    flight_config.capacity = 1 << 20;  // never full: measure concurrency
    flight_config.organization = organization;
    flight_config.workers = 16;
    flight_config.service_time = Millis(2);
    flight_config.logging = false;
    auto flight = node.Create<FlightGuardian>(
        "flight", "f1", flight_config.ToArgs(), false);
    const PortName port = (*flight)->ProvidedPorts()[0];

    std::vector<std::string> dates;
    for (int d = 0; d < dates_count; ++d) {
      dates.push_back(DateString(d));
    }
    std::vector<Guardian*> shells;
    for (int c = 0; c < clerks; ++c) {
      shells.push_back(world->Shell(node, "clerk-" + std::to_string(c)));
    }
    state.ResumeTiming();

    // Clerks run concurrently; each sends its requests back-to-back.
    std::atomic<int> completed{0};
    {
      std::vector<std::thread> threads;
      threads.reserve(clerks);
      for (int c = 0; c < clerks; ++c) {
        threads.emplace_back([&, c] {
          // Each clerk cycles through the dates starting at its own offset,
          // so at any instant distinct clerks tend to touch distinct dates.
          std::vector<std::string> my_dates;
          for (int d = 0; d < dates_count; ++d) {
            my_dates.push_back(dates[(c + d) % dates_count]);
          }
          completed.fetch_add(DriveReserves(*shells[c], port,
                                            requests_per_clerk, my_dates,
                                            Millis(30000),
                                            "c" + std::to_string(c)));
        });
      }
      for (auto& thread : threads) {
        thread.join();
      }
    }
    if (completed.load() != clerks * requests_per_clerk) {
      state.SkipWithError("requests failed");
      return;
    }

    state.PauseTiming();
    world.reset();  // join everything outside the timed region
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * clerks * requests_per_clerk);
  state.counters["clerks"] = clerks;
  state.counters["dates"] = dates_count;
}

}  // namespace
}  // namespace guardians

// org ∈ {0: one-at-a-time, 1: serializer, 2: monitor-fork}
BENCHMARK(guardians::BM_FlightOrganization)
    ->ArgNames({"org", "clerks", "dates"})
    // Single date: every organization must serialize.
    ->Args({0, 8, 1})
    ->Args({1, 8, 1})
    ->Args({2, 8, 1})
    // Many dates: 1b/1c exploit concurrency, 1a cannot.
    ->Args({0, 8, 8})
    ->Args({1, 8, 8})
    ->Args({2, 8, 8})
    // Scaling in clerk count at fixed date spread.
    ->Args({0, 2, 8})
    ->Args({1, 2, 8})
    ->Args({2, 2, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
