// Experiment FLOW — credit-based flow control under saturation.
//
// §3.4 makes overflow loss a designed-in behaviour ("if there is no room
// for the message, the message is thrown away"); DESIGN.md §11 layers an
// AIMD congestion window over the receipt-ack channel so senders stop
// throwing messages at ports that have no room. This bench drives one
// slow sink (fixed per-message service time, 16-slot port) from an
// open-loop sender pool at {0.5, 1, 1.5, 2}x the sink's saturation rate,
// once with flow control on and once with it off, and measures goodput
// (messages consumed per second) and deliver.drop.port_full.
//
// Three properties are checked, not just measured, by the custom main
// (hard failure, exit 1):
//  - goodput holds at saturation: with flow on, goodput at 2x offered
//    load is within 10% of the peak flow-on goodput — the window sheds
//    the excess at the *sender*, so overload does not erode throughput;
//  - drops collapse: deliver.drop.port_full at 2x with flow on is at
//    least 90% below the flow-off baseline at 2x;
//  - determinism survives: drop/dup counts of a seeded scenario are
//    bit-identical at delivery_shards 1 and 4 with flow control active.
// Results land in BENCH_flowctl.json for cross-PR tracking.
#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/sendprims/sync_send.h"

namespace guardians {
namespace {

constexpr auto kServiceTime = Micros(100);  // sink's per-message work
constexpr size_t kSinkCapacity = 16;
constexpr int kSenderThreads = 24;  // > capacity, so the window binds
constexpr auto kLegDuration = Millis(400);
constexpr auto kAckTimeout = Millis(5);

PortType SinkPortType() {
  return PortType("flow_sink",
                  {MessageSig{"put", {ArgType::Of(TypeTag::kString)}, {}}});
}

struct LegOutcome {
  double goodput = 0;       // consumed msgs/sec over the leg
  double attempted = 0;     // sends the pool actually issued
  double consumed = 0;      // messages the sink dequeued by sender join
  double port_full = 0;     // deliver.drop.port_full
  double full_nacks = 0;    // flow.full_nacks
  double deferred = 0;      // flow.sends_deferred
};
// Keyed by (load_pct, flow_on), cross-checked after all runs.
std::map<std::pair<int, int>, LegOutcome>& Outcomes() {
  static std::map<std::pair<int, int>, LegOutcome> outcomes;
  return outcomes;
}

// One leg: open-loop pool of kSenderThreads, each ticking at an interval
// chosen so the pool's aggregate offered rate is load_pct% of the sink's
// saturation rate (1 message per kServiceTime). A tick that finds its
// thread still blocked (flow deferral, full queue ack wait) is not banked:
// that is the backpressure reaching the source.
LegOutcome RunLeg(int load_pct, bool flow_on) {
  SystemConfig config;
  config.seed = 41;
  config.default_link.latency = Micros(20);
  config.flow.enabled = flow_on;
  BenchWorld world(config);
  NodeRuntime& senders = world.system.AddNode("senders");
  NodeRuntime& sink_node = world.system.AddNode("sink");
  Guardian* sink = world.Shell(sink_node, "sink");
  Port* target = sink->AddPort(SinkPortType(), kSinkCapacity);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> consumed{0};
  std::thread consumer([sink, target, &stop, &consumed] {
    while (!stop.load()) {
      auto got = sink->Receive(target, Millis(50));
      if (got.ok()) {
        std::this_thread::sleep_for(kServiceTime);
        consumed.fetch_add(1);
      }
    }
  });

  const auto interval =
      Micros(kSenderThreads * ToMicros(kServiceTime) * 100 / load_pct);
  std::atomic<uint64_t> attempted{0};
  std::vector<std::thread> pool;
  const TimePoint start = Now();
  const TimePoint leg_end = start + kLegDuration;
  for (int t = 0; t < kSenderThreads; ++t) {
    Guardian* shell =
        world.Shell(senders, "sender" + std::to_string(t));
    pool.emplace_back([shell, target, &senders, &attempted, interval,
                       leg_end] {
      TimePoint next = Now();
      while (true) {
        next += interval;
        const TimePoint now = Now();
        if (now >= leg_end) {
          break;
        }
        if (next > now) {
          std::this_thread::sleep_until(next);
        } else {
          next = now;  // fell behind: do not bank missed ticks
        }
        attempted.fetch_add(1);
        (void)SyncSend(*shell, target->name(), "put", {Value::Str("m")},
                       kAckTimeout, senders.NextDedupSeq());
      }
    });
  }
  for (auto& t : pool) {
    t.join();
  }
  const double seconds = static_cast<double>(ToMicros(Now() - start)) / 1e6;
  const uint64_t consumed_at_join = consumed.load();
  stop.store(true);
  consumer.join();

  LegOutcome out;
  out.goodput = static_cast<double>(consumed_at_join) / seconds;
  out.attempted = static_cast<double>(attempted.load());
  out.consumed = static_cast<double>(consumed_at_join);
  out.port_full = static_cast<double>(
      world.system.metrics().CounterValue("deliver.drop.port_full"));
  out.full_nacks = static_cast<double>(
      world.system.metrics().CounterValue("flow.full_nacks"));
  out.deferred = static_cast<double>(
      world.system.metrics().CounterValue("flow.sends_deferred"));
  return out;
}

void BM_Saturation(benchmark::State& state) {
  const int load_pct = static_cast<int>(state.range(0));
  const bool flow_on = state.range(1) != 0;
  LegOutcome out;
  for (auto _ : state) {
    out = RunLeg(load_pct, flow_on);
    state.SetIterationTime(static_cast<double>(ToMicros(kLegDuration)) /
                           1e6);
  }
  state.counters["goodput_msgs_per_s"] = benchmark::Counter(out.goodput);
  state.counters["port_full"] = out.port_full;
  state.counters["deferred"] = out.deferred;
  state.SetItemsProcessed(static_cast<int64_t>(out.consumed));
  Outcomes()[{load_pct, flow_on ? 1 : 0}] = out;
}

// The determinism leg: a seeded lossy/duplicating scenario, flow control
// on, replayed at delivery_shards 1 and 4 — every count must match.
struct DetCounts {
  NetworkStats net;
  uint64_t suppressed = 0;
  uint64_t credits = 0;
  bool operator==(const DetCounts& o) const {
    return net.packets_sent == o.net.packets_sent &&
           net.packets_dropped == o.net.packets_dropped &&
           net.packets_duplicated == o.net.packets_duplicated &&
           net.packets_delivered == o.net.packets_delivered &&
           suppressed == o.suppressed && credits == o.credits;
  }
};

DetCounts RunDeterminismLeg(size_t shards) {
  SystemConfig config;
  config.seed = 43;
  config.delivery_shards = shards;
  config.default_link.latency = Micros(30);
  config.default_link.jitter = Micros(10);
  config.default_link.drop_prob = 0.05;
  config.default_link.dup_prob = 0.02;
  BenchWorld world(config);
  NodeRuntime& a = world.system.AddNode("a");
  NodeRuntime& b = world.system.AddNode("b");
  Guardian* sender = world.Shell(a, "sender");
  Guardian* receiver = world.Shell(b, "receiver");
  Port* target = receiver->AddPort(SinkPortType(), /*capacity=*/1024);
  for (int i = 0; i < 400; ++i) {
    (void)sender->SendFull(target->name(), "put",
                           {Value::Str("m" + std::to_string(i))}, PortName{},
                           PortName{}, a.NextDedupSeq());
  }
  world.system.network().DrainForTesting();
  DetCounts c;
  c.net = world.system.network().stats();
  c.suppressed =
      world.system.metrics().CounterValue("deliver.dup.suppressed");
  c.credits = world.system.metrics().CounterValue("flow.credits_granted");
  return c;
}

// Verifies the three FLOW properties over the collected outcomes and
// writes BENCH_flowctl.json. Returns 0 on success.
int CheckAndRecord() {
  auto& outcomes = Outcomes();
  if (outcomes.empty()) {
    return 0;  // filtered run (--benchmark_filter): nothing to check
  }
  BenchJson json("BENCH_flowctl.json");
  int failures = 0;
  double peak_on = 0;
  for (const auto& [key, out] : outcomes) {
    json.Record("saturation/load:" + std::to_string(key.first) +
                    "/flow:" + std::to_string(key.second),
                {{"load_pct", static_cast<double>(key.first)},
                 {"flow_on", static_cast<double>(key.second)},
                 {"goodput_msgs_per_s", out.goodput},
                 {"attempted", out.attempted},
                 {"consumed", out.consumed},
                 {"port_full", out.port_full},
                 {"full_nacks", out.full_nacks},
                 {"deferred", out.deferred}});
    if (key.second == 1 && out.goodput > peak_on) {
      peak_on = out.goodput;
    }
  }

  const auto on2x = outcomes.find({200, 1});
  const auto off2x = outcomes.find({200, 0});
  if (on2x != outcomes.end() && off2x != outcomes.end()) {
    // Goodput holds at 2x saturation.
    const double ratio = peak_on > 0 ? on2x->second.goodput / peak_on : 0;
    json.Record("saturation/goodput_retention_2x", {{"ratio", ratio}});
    std::printf("FLOW: goodput at 2x load = %.0f msgs/s (%.0f%% of peak "
                "flow-on goodput %.0f)\n",
                on2x->second.goodput, ratio * 100, peak_on);
    if (ratio < 0.9) {
      std::fprintf(stderr,
                   "FLOW FAIL: goodput at 2x load is %.0f%% of peak "
                   "(< 90%%)\n",
                   ratio * 100);
      ++failures;
    }
    // Drops collapse vs the flow-off baseline.
    if (off2x->second.port_full < 50) {
      std::fprintf(stderr,
                   "FLOW FAIL: flow-off baseline shed only %.0f messages "
                   "at 2x load — the bench did not saturate the sink\n",
                   off2x->second.port_full);
      ++failures;
    } else {
      const double drop_ratio =
          on2x->second.port_full / off2x->second.port_full;
      json.Record("saturation/drop_reduction_2x",
                  {{"flow_off", off2x->second.port_full},
                   {"flow_on", on2x->second.port_full},
                   {"ratio", drop_ratio}});
      std::printf("FLOW: port_full drops at 2x load: %.0f (off) -> %.0f "
                  "(on), %.1f%% remain\n",
                  off2x->second.port_full, on2x->second.port_full,
                  drop_ratio * 100);
      if (drop_ratio > 0.1) {
        std::fprintf(stderr,
                     "FLOW FAIL: flow control kept %.1f%% of port_full "
                     "drops (must shed >= 90%%)\n",
                     drop_ratio * 100);
        ++failures;
      }
    }
  }

  // Determinism across delivery shards.
  const DetCounts one = RunDeterminismLeg(1);
  const DetCounts four = RunDeterminismLeg(4);
  json.Record("saturation/determinism",
              {{"dropped", static_cast<double>(one.net.packets_dropped)},
               {"duplicated",
                static_cast<double>(one.net.packets_duplicated)},
               {"suppressed", static_cast<double>(one.suppressed)},
               {"credits", static_cast<double>(one.credits)},
               {"identical", one == four ? 1.0 : 0.0}});
  if (one == four) {
    std::printf("FLOW: drop/dup/credit counts bit-identical at "
                "delivery_shards 1 and 4 (dropped %llu, duplicated %llu, "
                "suppressed %llu)\n",
                static_cast<unsigned long long>(one.net.packets_dropped),
                static_cast<unsigned long long>(one.net.packets_duplicated),
                static_cast<unsigned long long>(one.suppressed));
  } else {
    std::fprintf(stderr,
                 "FLOW FAIL: counts diverge across delivery_shards 1 vs 4 "
                 "(dropped %llu vs %llu, duplicated %llu vs %llu, "
                 "suppressed %llu vs %llu, credits %llu vs %llu)\n",
                 static_cast<unsigned long long>(one.net.packets_dropped),
                 static_cast<unsigned long long>(four.net.packets_dropped),
                 static_cast<unsigned long long>(one.net.packets_duplicated),
                 static_cast<unsigned long long>(four.net.packets_duplicated),
                 static_cast<unsigned long long>(one.suppressed),
                 static_cast<unsigned long long>(four.suppressed),
                 static_cast<unsigned long long>(one.credits),
                 static_cast<unsigned long long>(four.credits));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_Saturation)
    ->ArgNames({"load_pct", "flow"})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({150, 0})
    ->Args({150, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return guardians::CheckAndRecord();
}
