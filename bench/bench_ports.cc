// Experiment PORTQ — Sections 3.2/3.4: bounded port buffers and the
// delivery semantics.
//
//  - "We assume that ports provide some buffer space so that messages may
//    be queued if necessary... If there is no room for the message, the
//    message is thrown away" and the system sends failure(...) to the
//    reply port when one was given. The burst test measures accepted vs
//    discarded vs failure-notified as burst size crosses the capacity.
//  - "No guarantee about arrival order is made" — under link jitter, a
//    numbered stream measures the out-of-order fraction observed by the
//    receiver.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"

namespace guardians {
namespace {

// Cross-PR perf tracking: every configuration appends one record here and
// the file is written at process exit.
BenchJson& PortsJson() {
  static BenchJson json("BENCH_ports.json");
  return json;
}

PortType StreamPortType() {
  return PortType("stream",
                  {MessageSig{"item",
                              {ArgType::Of(TypeTag::kInt)},
                              {"taken"}},
                   MessageSig{"seq", {ArgType::Of(TypeTag::kInt)}, {}}});
}

PortType StreamReplyType() {
  return PortType("stream_reply", {MessageSig{"taken", {}, {}}});
}

// A deliberately slow consumer with a small buffer.
class SlowConsumer : public Guardian {
 public:
  // args: [capacity int, per_item_us int]
  Status Setup(const ValueList& args) override {
    service_ = Micros(args[1].int_value());
    AddPort(StreamPortType(), static_cast<size_t>(args[0].int_value()),
            /*provided=*/true);
    return OkStatus();
  }

  void Main() override {
    for (;;) {
      auto received = Receive(port(0), Micros::max());
      if (!received.ok()) {
        return;
      }
      if (service_.count() > 0) {
        std::this_thread::sleep_for(service_);
      }
      if (received->command == "seq") {
        const int64_t n = received->args[0].int_value();
        if (n < last_seen_.load()) {
          out_of_order_.fetch_add(1);
        }
        last_seen_.store(n);
        seen_.fetch_add(1);
      } else {
        consumed_.fetch_add(1);
        if (!received->reply_to.IsNull()) {
          Status st = Send(received->reply_to, "taken", {});
          (void)st;
        }
      }
    }
  }

  Micros service_{0};
  std::atomic<int64_t> consumed_{0};
  std::atomic<int64_t> seen_{0};
  std::atomic<int64_t> last_seen_{-1};
  std::atomic<int64_t> out_of_order_{0};
};

void BM_PortBufferOverrun(benchmark::State& state) {
  const int capacity = static_cast<int>(state.range(0));
  const int burst = static_cast<int>(state.range(1));

  int64_t accepted_total = 0;
  int64_t failures_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 3;
    config.default_link.latency = Micros(50);
    BenchWorld world(config);
    NodeRuntime& a = world.system.AddNode("sender");
    NodeRuntime& b = world.system.AddNode("consumer");
    b.RegisterGuardianType("slow", MakeFactory<SlowConsumer>());
    Guardian* driver = world.Shell(a, "driver");
    auto consumer = b.Create<SlowConsumer>(
        "slow", "slow", {Value::Int(capacity), Value::Int(500)}, false);
    const PortName port = (*consumer)->ProvidedPorts()[0];
    Port* reply_port = driver->AddPort(StreamReplyType(), burst * 2);
    state.ResumeTiming();

    // Fire the whole burst with the no-wait send, each carrying a reply
    // port so the system can report discards.
    for (int i = 0; i < burst; ++i) {
      Status st = driver->Send(port, "item", {Value::Int(i)},
                               reply_port->name());
      benchmark::DoNotOptimize(st);
    }
    // Collect outcomes: a "taken" per consumed item, a failure per discard.
    int taken = 0;
    int failures = 0;
    while (taken + failures < burst) {
      auto received = driver->Receive(reply_port, Millis(3000));
      if (!received.ok()) {
        break;  // residue lost to timing; counted as neither
      }
      if (received->command == "taken") {
        ++taken;
      } else {
        ++failures;
      }
    }
    accepted_total += taken;
    failures_total += failures;

    state.PauseTiming();
    // Cross-check the reply-port bookkeeping against the runtime's own
    // drop-reason counters: every discard must be a port_full, not a
    // retired/no_port misattribution.
    MetricsRegistry& metrics = world.system.metrics();
    state.counters["drops_port_full"] = benchmark::Counter(
        static_cast<double>(metrics.CounterValue("deliver.drop.port_full")));
    state.counters["drops_port_retired"] = benchmark::Counter(
        static_cast<double>(
            metrics.CounterValue("deliver.drop.port_retired")));
    state.ResumeTiming();
  }
  state.counters["capacity"] = capacity;
  state.counters["burst"] = burst;
  state.counters["accepted"] = benchmark::Counter(
      static_cast<double>(accepted_total) / state.iterations());
  state.counters["discard_failures"] = benchmark::Counter(
      static_cast<double>(failures_total) / state.iterations());
  state.SetItemsProcessed(state.iterations() * burst);
  PortsJson().Record(
      "port_buffer_overrun/capacity:" + std::to_string(capacity) +
          "/burst:" + std::to_string(burst),
      {{"capacity", static_cast<double>(capacity)},
       {"burst", static_cast<double>(burst)},
       {"accepted",
        static_cast<double>(accepted_total) / state.iterations()},
       {"discard_failures",
        static_cast<double>(failures_total) / state.iterations()}});
}

void BM_ReorderingUnderJitter(benchmark::State& state) {
  const auto jitter = Micros(state.range(0));
  constexpr int kMessages = 400;

  double out_of_order_frac = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 23;
    config.default_link.latency = Micros(500);
    config.default_link.jitter = jitter;
    BenchWorld world(config);
    NodeRuntime& a = world.system.AddNode("sender");
    NodeRuntime& b = world.system.AddNode("consumer");
    b.RegisterGuardianType("slow", MakeFactory<SlowConsumer>());
    Guardian* driver = world.Shell(a, "driver");
    auto consumer = b.Create<SlowConsumer>(
        "slow", "slow", {Value::Int(kMessages * 2), Value::Int(0)}, false);
    const PortName port = (*consumer)->ProvidedPorts()[0];
    state.ResumeTiming();

    for (int i = 0; i < kMessages; ++i) {
      Status st = driver->Send(port, "seq", {Value::Int(i)});
      benchmark::DoNotOptimize(st);
    }
    const Deadline deadline(Millis(10000));
    while ((*consumer)->seen_.load() < kMessages && !deadline.Expired()) {
      std::this_thread::sleep_for(Millis(1));
    }
    out_of_order_frac +=
        static_cast<double>((*consumer)->out_of_order_.load()) / kMessages;

    state.PauseTiming();
    state.ResumeTiming();
  }
  state.counters["jitter_us"] = static_cast<double>(jitter.count());
  state.counters["out_of_order_frac"] =
      benchmark::Counter(out_of_order_frac / state.iterations());
  state.SetItemsProcessed(state.iterations() * kMessages);
  PortsJson().Record(
      "reordering_under_jitter/jitter_us:" +
          std::to_string(jitter.count()),
      {{"jitter_us", static_cast<double>(jitter.count())},
       {"out_of_order_frac", out_of_order_frac / state.iterations()}});
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_PortBufferOverrun)
    ->ArgNames({"capacity", "burst"})
    ->Args({64, 32})    // fits: everything accepted
    ->Args({64, 128})   // overruns: discards + system failures
    ->Args({16, 128})   // tiny buffer
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(guardians::BM_ReorderingUnderJitter)
    ->ArgNames({"jitter_us"})
    ->Arg(0)      // a quiet link still delivers in order here
    ->Arg(200)
    ->Arg(1000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
