// Experiment CHAOS — the deterministic chaos harness as a CI gate.
//
// Three pinned seeds run the full composed-fault schedule (partitions,
// one-way cuts, campus cuts, link storms, crashes, store failures, dup
// replays) against the bank + airline + tally workloads, with the global
// invariant suite checked every epoch and at the end. The bench is
// self-checking: any invariant violation prints the seed + schedule dump
// and fails the binary (exit 1), and the mean events/sec + recovery counts
// land in BENCH_chaos.json so the harness's own cost is tracked across PRs.
//
// One seed additionally runs in supervised mode (watcher-thread restarts
// instead of harness-driven synchronous ones) so the gate covers both
// recovery paths.
//
// --soak N: after the pinned seeds, run N additional seeds on simulated
// time (clock skew / drift / reordering storms included in the generated
// schedules). Virtual time makes each soak seed cost milliseconds of
// wall clock, so N can be large; every soak seed lands in
// BENCH_chaos.json as its own record with a pass field, and any failing
// seed fails the binary.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "src/fault/chaos.h"

namespace guardians {
namespace {

struct SeedOutcome {
  uint64_t seed = 0;
  bool supervised = false;
  bool soak = false;  // --soak extra seed, run on simulated time
  double wall_ms = 0;
  ChaosReport report;
};

std::vector<SeedOutcome>& Outcomes() {
  static std::vector<SeedOutcome> outcomes;
  return outcomes;
}

// Pinned: changing these invalidates BENCH_chaos.json comparisons across
// checkouts, so treat them like golden files.
// All three compose crashes, dup replays, partitions, and storms or store
// failures (picked by scanning GenerateSchedule over [100, 360)).
constexpr uint64_t kSeeds[] = {114, 163, 225};

void BM_ChaosSeed(benchmark::State& state) {
  ChaosConfig config;
  config.seed = kSeeds[state.range(0)];
  config.supervised = state.range(1) != 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    ChaosEngine engine(config);
    ChaosReport report = engine.Run();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    SeedOutcome outcome;
    outcome.seed = config.seed;
    outcome.supervised = config.supervised;
    outcome.wall_ms = wall_ms;
    outcome.report = std::move(report);
    Outcomes().push_back(std::move(outcome));
  }
  const SeedOutcome& last = Outcomes().back();
  state.counters["events"] =
      static_cast<double>(last.report.events_applied);
  state.counters["violations"] =
      static_cast<double>(last.report.violations.size());
  state.counters["ops_acked"] = static_cast<double>(last.report.ops_acked);
}

// Soak seeds run on simulated time so the schedule includes the clock
// chapter (skew steps, drift, reordering storms) and each seed costs
// wall-milliseconds; the base is arbitrary but pinned so a failing soak
// seed reproduces by number.
constexpr uint64_t kSoakSeedBase = 1000;

void RunSoak(int n) {
  for (int i = 0; i < n; ++i) {
    ChaosConfig config;
    config.seed = kSoakSeedBase + static_cast<uint64_t>(i);
    config.sim_time = true;
    const auto t0 = std::chrono::steady_clock::now();
    ChaosEngine engine(config);
    ChaosReport report = engine.Run();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    SeedOutcome outcome;
    outcome.seed = config.seed;
    outcome.soak = true;
    outcome.wall_ms = wall_ms;
    outcome.report = std::move(report);
    Outcomes().push_back(std::move(outcome));
  }
}

int CheckAndRecord() {
  BenchJson json("BENCH_chaos.json");
  int violations_total = 0;
  int soak_failed = 0;
  for (const SeedOutcome& o : Outcomes()) {
    const double events = static_cast<double>(o.report.events_applied);
    const bool pass = o.report.ok();
    std::string name = o.soak ? "chaos/soak:" + std::to_string(o.seed)
                              : "chaos/seed:" + std::to_string(o.seed) +
                                    (o.supervised ? "/supervised" : "");
    json.Record(
        name,
        {{"seed", static_cast<double>(o.seed)},
         {"supervised", o.supervised ? 1.0 : 0.0},
         {"sim_time", o.soak ? 1.0 : 0.0},
         {"pass", pass ? 1.0 : 0.0},
         {"wall_ms", o.wall_ms},
         {"events", events},
         {"events_per_sec", o.wall_ms > 0 ? events / (o.wall_ms / 1000.0)
                                          : 0.0},
         {"crashes", static_cast<double>(o.report.crashes)},
         {"recoveries", static_cast<double>(o.report.recoveries)},
         {"dup_replays", static_cast<double>(o.report.dup_replays)},
         {"ops_attempted", static_cast<double>(o.report.ops_attempted)},
         {"ops_acked", static_cast<double>(o.report.ops_acked)},
         {"violations", static_cast<double>(o.report.violations.size())}});
    violations_total += static_cast<int>(o.report.violations.size());
    soak_failed += (o.soak && !pass) ? 1 : 0;
    std::printf("chaos seed %llu%s%s: %s %s\n",
                static_cast<unsigned long long>(o.seed),
                o.supervised ? " (supervised)" : "",
                o.soak ? " (soak, sim-time)" : "",
                o.report.Summary().c_str(), pass ? "PASS" : "FAIL");
    if (!o.report.ok()) {
      std::fprintf(stderr, "%s\n", o.report.failure_dump.c_str());
    }
  }
  if (Outcomes().empty()) {
    std::fprintf(stderr, "chaos bench ran zero seeds\n");
    return 1;
  }
  if (soak_failed > 0) {
    std::fprintf(stderr, "chaos soak: %d seed(s) failed\n", soak_failed);
  }
  return violations_total == 0 ? 0 : 1;
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_ChaosSeed)
    ->ArgNames({"seed_idx", "supervised"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 1})  // one supervised run covers the watcher-thread path
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

int main(int argc, char** argv) {
  // Strip --soak N before the benchmark library sees (and rejects) it.
  int soak = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--soak") == 0 && i + 1 < argc) {
      soak = std::atoi(argv[i + 1]);
      for (int j = i; j + 2 < argc; ++j) {
        argv[j] = argv[j + 2];
      }
      argc -= 2;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (soak > 0) {
    std::printf("chaos soak: %d sim-time seeds from %llu\n", soak,
                static_cast<unsigned long long>(guardians::kSoakSeedBase));
    guardians::RunSoak(soak);
  }
  return guardians::CheckAndRecord();
}
