// Experiment DELIV — the sharded delivery engine.
//
// §3.4 promises best-effort *unordered* delivery with silent discard, so
// nothing constrains ordering across destinations: the network may deliver
// to different nodes in parallel. This bench sweeps delivery worker count
// on a fixed 8-node burst workload where every delivery does the real
// receive-side work (CRC verify, reassembly, envelope decode) plus a fixed
// per-packet service time — the worker is occupied for the duration of the
// sink call, as it is in the runtime — and measures aggregate delivery
// throughput. With one worker all service time serializes; with N workers
// the shards overlap it, so the measured speedup reflects delivery
// concurrency rather than host core count (CI containers may have 1 core).
//
// Two properties are checked, not just measured, by the custom main:
//  - determinism: drop/corruption decisions are made at Send() time from
//    one seeded rng, so their counts must be bit-identical at every worker
//    count (hard failure if not);
//  - scaling: aggregate delivery throughput at 4 workers vs 1 is printed
//    and recorded in BENCH_delivery.json (hard failure below 1.2x; the
//    acceptance target is 2x on idle multi-core hardware).
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/wire/envelope.h"
#include "src/wire/packet.h"

namespace guardians {
namespace {

constexpr int kNodes = 8;
constexpr int kMessagesPerNode = 60;
constexpr size_t kBlobBytes = 8 * 1024;  // ~9 fragments per message at 1 KB
constexpr uint64_t kMaxPayload = 1024;
// Per-packet receive-side service time, spent inside the sink call while
// the delivery worker is occupied.
constexpr auto kServiceTime = Micros(50);

// Results per worker count, cross-checked after all runs.
struct RunOutcome {
  uint64_t dropped = 0;
  uint64_t corrupted = 0;
  uint64_t delivered = 0;
  uint64_t decoded = 0;
  double best_packets_per_sec = 0;
};
std::map<int, RunOutcome>& Outcomes() {
  static std::map<int, RunOutcome> outcomes;
  return outcomes;
}

// The receive side of one node: what NodeRuntime::DeliverPacket does up to
// the port push — serialize on a per-node lock, reassemble, decode.
struct NodeSink {
  std::mutex mu;
  Reassembler reassembler{4096};
  uint64_t decoded = 0;
};

void BM_DeliveryScaling(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));

  // One canonical message: a command with an 8 KB blob argument.
  Envelope proto;
  proto.src_node = kNodes + 1;
  proto.target = PortName{1, 1, 0, 0x1234};
  proto.command = "burst";
  proto.args = {Value::Blob(Bytes(kBlobBytes, 0x5C))};
  auto encoded = EncodeEnvelope(proto, DefaultLimits());
  if (!encoded.ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  // One shared buffer; every Fragment below slices it (refbumps, no clones).
  const BufferSlice message(std::move(*encoded));

  RunOutcome outcome;
  for (auto _ : state) {
    Network network(/*seed=*/1234, nullptr, nullptr, workers);
    // Zero latency, a pinch of loss and corruption: the engine itself is
    // the bottleneck, and the drop accounting must stay seed-deterministic.
    network.SetDefaultLink(LinkParams{Micros(0), Micros(0), 0.01, 0.005, 0});
    std::vector<NodeId> dsts;
    std::vector<std::unique_ptr<NodeSink>> sinks;
    for (int i = 0; i < kNodes; ++i) {
      const NodeId id = network.AddNode("n" + std::to_string(i));
      auto sink = std::make_unique<NodeSink>();
      NodeSink* raw = sink.get();
      network.SetSink(id, [raw](Packet&& packet) {
        std::this_thread::sleep_for(kServiceTime);
        std::lock_guard<std::mutex> lock(raw->mu);
        auto added = raw->reassembler.Add(std::move(packet));
        if (!added.ok() || !added->has_value()) {
          return;  // corrupt fragment or message still incomplete
        }
        auto env = DecodeEnvelope(**added, DefaultLimits(), nullptr);
        if (env.ok()) {
          ++raw->decoded;
        }
      });
      dsts.push_back(id);
      sinks.push_back(std::move(sink));
    }
    const NodeId sender = network.AddNode("sender");

    // The burst: every node gets kMessagesPerNode multi-fragment messages,
    // round-robin so all shards stay busy. Timed manually so the custom
    // main can compute the 4-vs-1 speedup from the same numbers.
    const TimePoint begin = Now();
    uint64_t msg_id = 0;
    for (int m = 0; m < kMessagesPerNode; ++m) {
      for (const NodeId dst : dsts) {
        auto packets = Fragment(message, ++msg_id, sender, dst, kMaxPayload);
        for (auto& packet : packets) {
          network.Send(std::move(packet));
        }
      }
    }
    network.DrainForTesting();
    const double seconds =
        static_cast<double>(ToMicros(Now() - begin)) / 1e6;
    state.SetIterationTime(seconds);

    const NetworkStats stats = network.stats();
    outcome.dropped = stats.packets_dropped;
    outcome.corrupted = stats.packets_corrupted;
    outcome.delivered = stats.packets_delivered;
    outcome.decoded = 0;
    for (const auto& sink : sinks) {
      outcome.decoded += sink->decoded;
    }
    const double pps =
        seconds > 0 ? static_cast<double>(stats.packets_delivered) / seconds
                    : 0;
    if (pps > outcome.best_packets_per_sec) {
      outcome.best_packets_per_sec = pps;
    }
    state.counters["packets"] = static_cast<double>(stats.packets_sent);
  }

  state.counters["workers"] = static_cast<double>(workers);
  state.counters["dropped"] = static_cast<double>(outcome.dropped);
  state.counters["corrupted"] = static_cast<double>(outcome.corrupted);
  state.counters["decoded"] = static_cast<double>(outcome.decoded);
  state.counters["delivered_pkts_per_s"] =
      benchmark::Counter(outcome.best_packets_per_sec);
  state.SetItemsProcessed(state.iterations() * kMessagesPerNode * kNodes);
  Outcomes()[static_cast<int>(workers)] = outcome;
}

// Verifies the two DELIV properties over the collected outcomes and writes
// BENCH_delivery.json. Returns 0 on success.
int CheckAndRecord() {
  auto& outcomes = Outcomes();
  if (outcomes.empty()) {
    return 0;  // filtered run (--benchmark_filter): nothing to check
  }
  BenchJson json("BENCH_delivery.json");
  int failures = 0;
  const RunOutcome* base = nullptr;
  for (const auto& [workers, outcome] : outcomes) {
    json.Record("delivery_scaling/workers:" + std::to_string(workers),
                {{"workers", static_cast<double>(workers)},
                 {"dropped", static_cast<double>(outcome.dropped)},
                 {"corrupted", static_cast<double>(outcome.corrupted)},
                 {"delivered", static_cast<double>(outcome.delivered)},
                 {"decoded", static_cast<double>(outcome.decoded)},
                 {"packets_per_sec", outcome.best_packets_per_sec}});
    if (base == nullptr) {
      base = &outcome;
      continue;
    }
    if (outcome.dropped != base->dropped ||
        outcome.corrupted != base->corrupted ||
        outcome.delivered != base->delivered ||
        outcome.decoded != base->decoded) {
      std::fprintf(stderr,
                   "DELIV FAIL: outcomes at %d workers diverge from "
                   "baseline (drop %llu vs %llu, corrupt %llu vs %llu, "
                   "decoded %llu vs %llu)\n",
                   workers,
                   static_cast<unsigned long long>(outcome.dropped),
                   static_cast<unsigned long long>(base->dropped),
                   static_cast<unsigned long long>(outcome.corrupted),
                   static_cast<unsigned long long>(base->corrupted),
                   static_cast<unsigned long long>(outcome.decoded),
                   static_cast<unsigned long long>(base->decoded));
      ++failures;
    }
  }
  if (outcomes.count(1) != 0 && outcomes.count(4) != 0) {
    const double speedup = outcomes[4].best_packets_per_sec /
                           outcomes[1].best_packets_per_sec;
    json.Record("delivery_scaling/speedup_4v1", {{"speedup", speedup}});
    std::printf("DELIV: aggregate delivery speedup 4 workers vs 1 = %.2fx "
                "(drop/corrupt counts identical across worker counts)\n",
                speedup);
    // The acceptance target is 2x on idle multi-core hardware; fail hard
    // only below a loose floor so loaded CI machines don't flake.
    if (speedup < 1.2) {
      std::fprintf(stderr, "DELIV FAIL: speedup %.2fx < 1.2x floor\n",
                   speedup);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_DeliveryScaling)
    ->ArgNames({"workers"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return guardians::CheckAndRecord();
}
