// Experiment XMIT — Section 3.3: transmission of abstract values.
//
// Measures the cost of the encode/decode machinery that lets different
// nodes use different internal representations:
//   - the built-in baseline (the system "can build and decompose messages
//     consisting of objects of built-in types" with no user code);
//   - complex numbers crossing a representation boundary (rect -> wire ->
//     polar);
//   - associative memories of sweeping size (hash table -> wire -> tree),
//     the paper's own example;
//   - enforcement of the system-wide integer bound (the 24-bit example).
//
// Expected shape: abstract transmission costs one traversal + allocation on
// each side, linear in value size, a small constant factor over the
// built-in baseline — the price of representation independence.
#include <benchmark/benchmark.h>

#include "src/transmit/assoc_memory.h"
#include "src/transmit/complex.h"
#include "src/transmit/document.h"
#include "src/wire/value_codec.h"

namespace guardians {
namespace {

Value BuiltinArray(int n) {
  std::vector<Value> items;
  items.reserve(n);
  for (int i = 0; i < n; ++i) {
    items.push_back(Value::Record({{"key", Value::Str("key-" +
                                                      std::to_string(i))},
                                   {"item", Value::Str("item")}}));
  }
  return Value::Array(std::move(items));
}

void BM_BuiltinRoundTrip(benchmark::State& state) {
  const Value v = BuiltinArray(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    auto encoded = EncodeValueToBytes(v);
    bytes = encoded->size();
    auto decoded = DecodeValueFromBytes(*encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}

void BM_ComplexRectToPolar(benchmark::State& state) {
  TransmitRegistry receiving_node;
  (void)receiving_node.Register(kComplexTypeName, PolarComplexDecoder());
  const Value v = Value::Abstract(MakeRectComplex(3.0, 4.0));
  for (auto _ : state) {
    auto encoded = EncodeValueToBytes(v);
    auto decoded = DecodeValueFromBytes(*encoded, DefaultLimits(),
                                        receiving_node.AsDecodeFn());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_AssocMemoryHashToTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransmitRegistry receiving_node;
  (void)receiving_node.Register(kAssocMemoryTypeName,
                                TreeAssocMemoryDecoder());
  auto memory = MakeHashAssocMemory();
  for (int i = 0; i < n; ++i) {
    memory->AddItem("key-" + std::to_string(i), "item");
  }
  const Value v = Value::Abstract(memory);
  size_t bytes = 0;
  for (auto _ : state) {
    auto encoded = EncodeValueToBytes(v);
    bytes = encoded->size();
    auto decoded = DecodeValueFromBytes(*encoded, DefaultLimits(),
                                        receiving_node.AsDecodeFn());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}

void BM_DocumentRoundTrip(benchmark::State& state) {
  const int paras = static_cast<int>(state.range(0));
  TransmitRegistry receiving_node;
  (void)receiving_node.Register(kDocumentTypeName, DocumentDecoder());
  std::vector<std::string> paragraphs(
      paras, "the quick brown fox jumps over the lazy dog");
  const Value v = Value::Abstract(MakeDocument("memo", paragraphs));
  for (auto _ : state) {
    auto encoded = EncodeValueToBytes(v);
    auto decoded = DecodeValueFromBytes(*encoded, DefaultLimits(),
                                        receiving_node.AsDecodeFn());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}

// The 24-bit system integer of Section 3.3: in-bound values encode; the
// out-of-bound check costs nothing measurable but *must* reject.
void BM_IntegerBoundCheck(benchmark::State& state) {
  WireLimits limits;
  limits.int_bits = 24;
  const Value in_bounds = Value::Int((1 << 23) - 1);
  const Value out_of_bounds = Value::Int(1 << 23);
  int64_t rejected = 0;
  for (auto _ : state) {
    auto good = EncodeValueToBytes(in_bounds, limits);
    auto bad = EncodeValueToBytes(out_of_bounds, limits);
    if (!bad.ok()) {
      ++rejected;
    }
    benchmark::DoNotOptimize(good);
  }
  if (rejected != static_cast<int64_t>(state.iterations())) {
    state.SkipWithError("bound enforcement failed");
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_BuiltinRoundTrip)
    ->ArgNames({"entries"})
    ->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(guardians::BM_ComplexRectToPolar)->Unit(benchmark::kNanosecond);
BENCHMARK(guardians::BM_AssocMemoryHashToTree)
    ->ArgNames({"entries"})
    ->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(guardians::BM_DocumentRoundTrip)
    ->ArgNames({"paras"})
    ->Arg(4)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(guardians::BM_IntegerBoundCheck)->Unit(benchmark::kNanosecond);

BENCHMARK_MAIN();
