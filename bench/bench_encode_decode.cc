// Experiment XMIT — Section 3.3: transmission of abstract values.
//
// Measures the cost of the encode/decode machinery that lets different
// nodes use different internal representations:
//   - the built-in baseline (the system "can build and decompose messages
//     consisting of objects of built-in types" with no user code);
//   - complex numbers crossing a representation boundary (rect -> wire ->
//     polar);
//   - associative memories of sweeping size (hash table -> wire -> tree),
//     the paper's own example;
//   - enforcement of the system-wide integer bound (the 24-bit example).
//
// Expected shape: abstract transmission costs one traversal + allocation on
// each side, linear in value size, a small constant factor over the
// built-in baseline — the price of representation independence.
//
// Self-checking: each benchmark tracks the BufferStats::BytesCopied()
// delta across its loop, and CheckAndRecord() writes BENCH_wire_codec.json
// asserting two budgets:
//  - the value codec performs ZERO buffer-layer copies per round trip
//    (it encodes into one pre-reserved vector and decodes from non-owning
//    views — a reintroduced Bytes round-trip through the Buffer layer
//    trips this immediately);
//  - builtin encoding stays linear: wire bytes per entry must not grow
//    with collection size (the old per-byte PutU8 growth pattern showed
//    up as capacity churn; the size check guards the format itself).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/buffer.h"
#include "src/transmit/assoc_memory.h"
#include "src/transmit/complex.h"
#include "src/transmit/document.h"
#include "src/wire/value_codec.h"

namespace guardians {
namespace {

struct CodecOutcome {
  double entries = 0;      // collection size, 0 when not applicable
  double wire_bytes = 0;   // bytes per encoded value
  uint64_t iterations = 0;
  uint64_t bytes_copied = 0;  // BufferStats delta across the whole loop
};

std::map<std::string, CodecOutcome>& Outcomes() {
  static std::map<std::string, CodecOutcome> outcomes;
  return outcomes;
}

Value BuiltinArray(int n) {
  std::vector<Value> items;
  items.reserve(n);
  for (int i = 0; i < n; ++i) {
    items.push_back(Value::Record({{"key", Value::Str("key-" +
                                                      std::to_string(i))},
                                   {"item", Value::Str("item")}}));
  }
  return Value::Array(std::move(items));
}

void BM_BuiltinRoundTrip(benchmark::State& state) {
  const Value v = BuiltinArray(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  const uint64_t copied_before = BufferStats::BytesCopied();
  for (auto _ : state) {
    auto encoded = EncodeValueToBytes(v);
    bytes = encoded->size();
    auto decoded = DecodeValueFromBytes(*encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["wire_bytes"] = static_cast<double>(bytes);
  auto& outcome =
      Outcomes()["builtin_round_trip/entries:" +
                 std::to_string(state.range(0))];
  outcome.entries = static_cast<double>(state.range(0));
  outcome.wire_bytes = static_cast<double>(bytes);
  outcome.iterations += state.iterations();
  outcome.bytes_copied += BufferStats::BytesCopied() - copied_before;
}

void BM_ComplexRectToPolar(benchmark::State& state) {
  TransmitRegistry receiving_node;
  (void)receiving_node.Register(kComplexTypeName, PolarComplexDecoder());
  const Value v = Value::Abstract(MakeRectComplex(3.0, 4.0));
  const uint64_t copied_before = BufferStats::BytesCopied();
  for (auto _ : state) {
    auto encoded = EncodeValueToBytes(v);
    auto decoded = DecodeValueFromBytes(*encoded, DefaultLimits(),
                                        receiving_node.AsDecodeFn());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
  auto& outcome = Outcomes()["complex_rect_to_polar"];
  outcome.iterations += state.iterations();
  outcome.bytes_copied += BufferStats::BytesCopied() - copied_before;
}

void BM_AssocMemoryHashToTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TransmitRegistry receiving_node;
  (void)receiving_node.Register(kAssocMemoryTypeName,
                                TreeAssocMemoryDecoder());
  auto memory = MakeHashAssocMemory();
  for (int i = 0; i < n; ++i) {
    memory->AddItem("key-" + std::to_string(i), "item");
  }
  const Value v = Value::Abstract(memory);
  size_t bytes = 0;
  const uint64_t copied_before = BufferStats::BytesCopied();
  for (auto _ : state) {
    auto encoded = EncodeValueToBytes(v);
    bytes = encoded->size();
    auto decoded = DecodeValueFromBytes(*encoded, DefaultLimits(),
                                        receiving_node.AsDecodeFn());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["wire_bytes"] = static_cast<double>(bytes);
  auto& outcome =
      Outcomes()["assoc_memory_hash_to_tree/entries:" + std::to_string(n)];
  outcome.entries = static_cast<double>(n);
  outcome.wire_bytes = static_cast<double>(bytes);
  outcome.iterations += state.iterations();
  outcome.bytes_copied += BufferStats::BytesCopied() - copied_before;
}

void BM_DocumentRoundTrip(benchmark::State& state) {
  const int paras = static_cast<int>(state.range(0));
  TransmitRegistry receiving_node;
  (void)receiving_node.Register(kDocumentTypeName, DocumentDecoder());
  std::vector<std::string> paragraphs(
      paras, "the quick brown fox jumps over the lazy dog");
  const Value v = Value::Abstract(MakeDocument("memo", paragraphs));
  const uint64_t copied_before = BufferStats::BytesCopied();
  for (auto _ : state) {
    auto encoded = EncodeValueToBytes(v);
    auto decoded = DecodeValueFromBytes(*encoded, DefaultLimits(),
                                        receiving_node.AsDecodeFn());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
  auto& outcome =
      Outcomes()["document_round_trip/paras:" + std::to_string(paras)];
  outcome.entries = static_cast<double>(paras);
  outcome.iterations += state.iterations();
  outcome.bytes_copied += BufferStats::BytesCopied() - copied_before;
}

// The 24-bit system integer of Section 3.3: in-bound values encode; the
// out-of-bound check costs nothing measurable but *must* reject.
void BM_IntegerBoundCheck(benchmark::State& state) {
  WireLimits limits;
  limits.int_bits = 24;
  const Value in_bounds = Value::Int((1 << 23) - 1);
  const Value out_of_bounds = Value::Int(1 << 23);
  int64_t rejected = 0;
  for (auto _ : state) {
    auto good = EncodeValueToBytes(in_bounds, limits);
    auto bad = EncodeValueToBytes(out_of_bounds, limits);
    if (!bad.ok()) {
      ++rejected;
    }
    benchmark::DoNotOptimize(good);
  }
  if (rejected != static_cast<int64_t>(state.iterations())) {
    state.SkipWithError("bound enforcement failed");
  }
  state.SetItemsProcessed(state.iterations());
}

// Verifies the codec copy/size budgets over the collected outcomes and
// writes BENCH_wire_codec.json. Returns 0 on success.
int CheckAndRecord() {
  const auto& outcomes = Outcomes();
  if (outcomes.empty()) {
    return 0;  // filtered run (--benchmark_filter): nothing to check
  }
  BenchJson json("BENCH_wire_codec.json");
  int failures = 0;
  for (const auto& [name, outcome] : outcomes) {
    json.Record(name,
                {{"entries", outcome.entries},
                 {"wire_bytes", outcome.wire_bytes},
                 {"iterations", static_cast<double>(outcome.iterations)},
                 {"bytes_copied", static_cast<double>(outcome.bytes_copied)}});
    // Budget 1: the codec never routes payloads through a Buffer copy.
    if (outcome.bytes_copied != 0) {
      std::fprintf(stderr,
                   "CODEC FAIL: %s copied %llu buffer bytes over %llu "
                   "iterations; the codec copy budget is zero\n",
                   name.c_str(),
                   static_cast<unsigned long long>(outcome.bytes_copied),
                   static_cast<unsigned long long>(outcome.iterations));
      ++failures;
    }
  }
  // Budget 2: builtin encoding is linear — per-entry wire bytes at 4096
  // entries may exceed the 16-entry figure only by the longer decimal keys
  // ("key-4095" vs "key-15"), never by per-entry framing that grows with
  // collection size. A super-linear format regression lands far above the
  // 1.25x allowance; key-length drift stays well below it.
  const auto small = outcomes.find("builtin_round_trip/entries:16");
  const auto large = outcomes.find("builtin_round_trip/entries:4096");
  if (small != outcomes.end() && large != outcomes.end()) {
    const double per_entry_small = small->second.wire_bytes / 16.0;
    const double per_entry_large = large->second.wire_bytes / 4096.0;
    json.Record("builtin_wire_bytes_per_entry",
                {{"at_16", per_entry_small}, {"at_4096", per_entry_large}});
    std::printf(
        "CODEC: builtin wire bytes/entry %.1f at 16 entries, %.1f at 4096 "
        "(zero buffer-layer copies across all codec benchmarks)\n",
        per_entry_small, per_entry_large);
    if (per_entry_large > per_entry_small * 1.25) {
      std::fprintf(stderr,
                   "CODEC FAIL: wire bytes/entry grew from %.1f (16 entries) "
                   "to %.1f (4096): encoding is super-linear\n",
                   per_entry_small, per_entry_large);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_BuiltinRoundTrip)
    ->ArgNames({"entries"})
    ->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(guardians::BM_ComplexRectToPolar)->Unit(benchmark::kNanosecond);
BENCHMARK(guardians::BM_AssocMemoryHashToTree)
    ->ArgNames({"entries"})
    ->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(guardians::BM_DocumentRoundTrip)
    ->ArgNames({"paras"})
    ->Arg(4)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(guardians::BM_IntegerBoundCheck)->Unit(benchmark::kNanosecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return guardians::CheckAndRecord();
}
