// Ablation: message fragmentation (Section 3.3's "breaking a large message
// into packets and reassembling the packets").
//
// Two effects of packet size that the paper's system model implies:
//  - overhead: small packets pay more header bytes per payload byte;
//  - loss amplification: a message is delivered only if EVERY fragment
//    arrives, so under per-packet loss q an n-fragment message survives
//    with probability (1-q)^n — large messages over small packets die
//    fast. This is why "the delivery is not guaranteed, but will happen
//    with high probability" degrades with message size, and why the
//    timeout/retry machinery above it must exist.
#include <thread>

#include "bench/bench_util.h"

namespace guardians {
namespace {

PortType BlobPortType() {
  return PortType("blob_sink",
                  {MessageSig{"blob", {ArgType::Of(TypeTag::kBytes)}, {}}});
}

class BlobSink : public Guardian {
 public:
  Status Setup(const ValueList& args) override {
    (void)args;
    AddPort(BlobPortType(), 1024, /*provided=*/true);
    return OkStatus();
  }
  void Main() override {
    for (;;) {
      auto received = Receive(port(0), Micros::max());
      if (!received.ok()) {
        return;
      }
      received_.fetch_add(1);
    }
  }
  std::atomic<int64_t> received_{0};
};

void BM_FragmentationLossAmplification(benchmark::State& state) {
  const uint64_t packet_payload = static_cast<uint64_t>(state.range(0));
  const size_t message_bytes = static_cast<size_t>(state.range(1));
  const double loss = static_cast<double>(state.range(2)) / 100.0;
  constexpr int kMessages = 200;

  double delivered_frac = 0;
  double wire_bytes_per_message = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 99;
    config.limits.max_packet_payload = packet_payload;
    config.default_link.latency = Micros(50);
    config.default_link.drop_prob = loss;
    BenchWorld world(config);
    NodeRuntime& a = world.system.AddNode("a");
    NodeRuntime& b = world.system.AddNode("b");
    b.RegisterGuardianType("sink", MakeFactory<BlobSink>());
    Guardian* driver = world.Shell(a, "driver");
    auto sink = b.Create<BlobSink>("sink", "sink", {}, false);
    const PortName port = (*sink)->ProvidedPorts()[0];
    state.ResumeTiming();

    for (int i = 0; i < kMessages; ++i) {
      Status st = driver->Send(
          port, "blob",
          {Value::Blob(Bytes(message_bytes, static_cast<uint8_t>(i)))});
      benchmark::DoNotOptimize(st);
    }
    world.system.network().DrainForTesting();
    // Allow the final deliveries to reach the sink process.
    const Deadline settle(Millis(500));
    while ((*sink)->received_.load() < kMessages && !settle.Expired()) {
      std::this_thread::sleep_for(Millis(2));
    }
    delivered_frac +=
        static_cast<double>((*sink)->received_.load()) / kMessages;
    wire_bytes_per_message +=
        static_cast<double>(world.system.network().stats().bytes_sent) /
        kMessages;
  }
  state.counters["packet_payload"] = static_cast<double>(packet_payload);
  state.counters["message_bytes"] = static_cast<double>(message_bytes);
  state.counters["loss_pct"] = static_cast<double>(state.range(2));
  state.counters["delivered_frac"] =
      benchmark::Counter(delivered_frac / state.iterations());
  state.counters["wire_bytes_per_msg"] =
      benchmark::Counter(wire_bytes_per_message / state.iterations());
  state.SetItemsProcessed(state.iterations() * kMessages);
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_FragmentationLossAmplification)
    ->ArgNames({"pkt", "msg", "loss_pct"})
    // Overhead at zero loss: packet-size sweep for a 8KB message.
    ->Args({128, 8192, 0})
    ->Args({1024, 8192, 0})
    ->Args({8192, 8192, 0})
    // Loss amplification: 2% per-packet loss, growing message size at 1KB
    // packets: survival ~ 0.98^fragments.
    ->Args({1024, 1024, 2})
    ->Args({1024, 8192, 2})
    ->Args({1024, 65536, 2})
    // Bigger packets shield big messages from amplification.
    ->Args({65536, 65536, 2})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
