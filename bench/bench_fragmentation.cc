// Ablation: message fragmentation (Section 3.3's "breaking a large message
// into packets and reassembling the packets").
//
// Two effects of packet size that the paper's system model implies:
//  - overhead: small packets pay more header bytes per payload byte;
//  - loss amplification: a message is delivered only if EVERY fragment
//    arrives, so under per-packet loss q an n-fragment message survives
//    with probability (1-q)^n — large messages over small packets die
//    fast. This is why "the delivery is not guaranteed, but will happen
//    with high probability" degrades with message size, and why the
//    timeout/retry machinery above it must exist.
//
// Self-checking (experiment WIRE): alongside the shape counters, each
// config measures BufferStats::BytesCopied() — the source feeding the
// buffer.bytes_copied metric — across its message burst, and
// CheckAndRecord() asserts the zero-copy wire path beats the legacy
// copying path by at least 30% bytes-copied-per-delivered-fragmented-
// message, writing BENCH_wire.json. The legacy model is what the code
// did before refcounted buffers, per delivered message:
//   - Fragment() built each packet payload as a subrange copy of the
//     encoded message (~message_bytes total), and
//   - reassembly completion joined the fragments into a fresh vector
//     (~message_bytes again),
// i.e. >= 2x message_bytes — conservatively ignoring the duplicate
// payload clones the old Network also paid. The new path fragments by
// slicing one refcounted buffer and reassembles contiguous slices by
// view, so the measured count should be near zero.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/buffer.h"

namespace guardians {
namespace {

PortType BlobPortType() {
  return PortType("blob_sink",
                  {MessageSig{"blob", {ArgType::Of(TypeTag::kBytes)}, {}}});
}

class BlobSink : public Guardian {
 public:
  Status Setup(const ValueList& args) override {
    (void)args;
    AddPort(BlobPortType(), 1024, /*provided=*/true);
    return OkStatus();
  }
  void Main() override {
    for (;;) {
      auto received = Receive(port(0), Micros::max());
      if (!received.ok()) {
        return;
      }
      received_.fetch_add(1);
    }
  }
  std::atomic<int64_t> received_{0};
};

struct FragOutcome {
  uint64_t packet_payload = 0;
  size_t message_bytes = 0;
  int loss_pct = 0;
  int64_t delivered_msgs = 0;
  int messages_sent = 0;
  uint64_t bytes_copied = 0;  // BufferStats delta across the burst
  double wire_bytes_per_msg = 0;
};

std::vector<FragOutcome>& Outcomes() {
  static std::vector<FragOutcome> outcomes;
  return outcomes;
}

void BM_FragmentationLossAmplification(benchmark::State& state) {
  const uint64_t packet_payload = static_cast<uint64_t>(state.range(0));
  const size_t message_bytes = static_cast<size_t>(state.range(1));
  const double loss = static_cast<double>(state.range(2)) / 100.0;
  constexpr int kMessages = 200;

  FragOutcome outcome;
  outcome.packet_payload = packet_payload;
  outcome.message_bytes = message_bytes;
  outcome.loss_pct = static_cast<int>(state.range(2));
  double delivered_frac = 0;
  double wire_bytes_per_message = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 99;
    config.limits.max_packet_payload = packet_payload;
    config.default_link.latency = Micros(50);
    config.default_link.drop_prob = loss;
    BenchWorld world(config);
    NodeRuntime& a = world.system.AddNode("a");
    NodeRuntime& b = world.system.AddNode("b");
    b.RegisterGuardianType("sink", MakeFactory<BlobSink>());
    Guardian* driver = world.Shell(a, "driver");
    auto sink = b.Create<BlobSink>("sink", "sink", {}, false);
    const PortName port = (*sink)->ProvidedPorts()[0];
    state.ResumeTiming();

    const uint64_t copied_before = BufferStats::BytesCopied();
    for (int i = 0; i < kMessages; ++i) {
      Status st = driver->Send(
          port, "blob",
          {Value::Blob(Bytes(message_bytes, static_cast<uint8_t>(i)))});
      benchmark::DoNotOptimize(st);
    }
    world.system.network().DrainForTesting();
    // Allow the final deliveries to reach the sink process.
    const Deadline settle(Millis(500));
    while ((*sink)->received_.load() < kMessages && !settle.Expired()) {
      std::this_thread::sleep_for(Millis(2));
    }
    outcome.bytes_copied += BufferStats::BytesCopied() - copied_before;
    outcome.delivered_msgs += (*sink)->received_.load();
    outcome.messages_sent += kMessages;
    delivered_frac +=
        static_cast<double>((*sink)->received_.load()) / kMessages;
    wire_bytes_per_message +=
        static_cast<double>(world.system.network().stats().bytes_sent) /
        kMessages;
  }
  outcome.wire_bytes_per_msg = wire_bytes_per_message / state.iterations();
  state.counters["packet_payload"] = static_cast<double>(packet_payload);
  state.counters["message_bytes"] = static_cast<double>(message_bytes);
  state.counters["loss_pct"] = static_cast<double>(state.range(2));
  state.counters["delivered_frac"] =
      benchmark::Counter(delivered_frac / state.iterations());
  state.counters["wire_bytes_per_msg"] =
      benchmark::Counter(wire_bytes_per_message / state.iterations());
  state.counters["bytes_copied"] = static_cast<double>(outcome.bytes_copied);
  state.SetItemsProcessed(state.iterations() * kMessages);
  Outcomes().push_back(outcome);
}

// Verifies the WIRE copy-budget property over the collected outcomes and
// writes BENCH_wire.json. Returns 0 on success.
int CheckAndRecord() {
  const auto& outcomes = Outcomes();
  if (outcomes.empty()) {
    return 0;  // filtered run (--benchmark_filter): nothing to check
  }
  BenchJson json("BENCH_wire.json");
  int failures = 0;
  for (const auto& outcome : outcomes) {
    const bool fragmented = outcome.message_bytes > outcome.packet_payload;
    const double delivered =
        static_cast<double>(outcome.delivered_msgs > 0 ? outcome.delivered_msgs
                                                       : 1);
    const double measured_per_msg =
        static_cast<double>(outcome.bytes_copied) / delivered;
    // Legacy model: subrange copies at Fragment() + the completion join.
    const double legacy_per_msg =
        2.0 * static_cast<double>(outcome.message_bytes);
    const double reduction = 1.0 - measured_per_msg / legacy_per_msg;
    const std::string name =
        "wire_copies/pkt:" + std::to_string(outcome.packet_payload) +
        "/msg:" + std::to_string(outcome.message_bytes) +
        "/loss_pct:" + std::to_string(outcome.loss_pct);
    json.Record(
        name,
        {{"packet_payload", static_cast<double>(outcome.packet_payload)},
         {"message_bytes", static_cast<double>(outcome.message_bytes)},
         {"loss_pct", static_cast<double>(outcome.loss_pct)},
         {"delivered_msgs", static_cast<double>(outcome.delivered_msgs)},
         {"messages_sent", static_cast<double>(outcome.messages_sent)},
         {"wire_bytes_per_msg", outcome.wire_bytes_per_msg},
         {"bytes_copied_per_delivered_msg", measured_per_msg},
         {"legacy_model_bytes_per_msg", legacy_per_msg},
         {"copy_reduction", reduction}});
    if (!fragmented || outcome.delivered_msgs == 0) {
      continue;  // the copy budget targets delivered *fragmented* messages
    }
    std::printf(
        "WIRE: pkt=%llu msg=%zu loss=%d%%: %.0f bytes copied per delivered "
        "message vs %.0f legacy model (%.0f%% reduction)\n",
        static_cast<unsigned long long>(outcome.packet_payload),
        outcome.message_bytes, outcome.loss_pct, measured_per_msg,
        legacy_per_msg, 100.0 * reduction);
    if (reduction < 0.30) {
      std::fprintf(stderr,
                   "WIRE FAIL: pkt=%llu msg=%zu loss=%d%%: copy reduction "
                   "%.0f%% < 30%% floor (%.0f bytes/msg measured, %.0f "
                   "legacy)\n",
                   static_cast<unsigned long long>(outcome.packet_payload),
                   outcome.message_bytes, outcome.loss_pct, 100.0 * reduction,
                   measured_per_msg, legacy_per_msg);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_FragmentationLossAmplification)
    ->ArgNames({"pkt", "msg", "loss_pct"})
    // Overhead at zero loss: packet-size sweep for a 8KB message.
    ->Args({128, 8192, 0})
    ->Args({1024, 8192, 0})
    ->Args({8192, 8192, 0})
    // Loss amplification: 2% per-packet loss, growing message size at 1KB
    // packets: survival ~ 0.98^fragments.
    ->Args({1024, 1024, 2})
    ->Args({1024, 8192, 2})
    ->Args({1024, 65536, 2})
    // Bigger packets shield big messages from amplification.
    ->Args({65536, 65536, 2})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return guardians::CheckAndRecord();
}
