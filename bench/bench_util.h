// Shared helpers for the experiment benchmarks. Each bench binary
// regenerates one figure/analysis of the paper (see DESIGN.md §4) and
// reports the measured shape through benchmark counters.
#ifndef GUARDIANS_BENCH_BENCH_UTIL_H_
#define GUARDIANS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/airline/airline_system.h"
#include "src/airline/workload.h"
#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"

namespace guardians {

// A system with one "clients" node plus whatever the scenario adds.
struct BenchWorld {
  explicit BenchWorld(SystemConfig config) : system(config) {}

  System system;

  // A driver shell guardian on `node` (registers the type if needed).
  Guardian* Shell(NodeRuntime& node, const std::string& name) {
    if (!node.KnowsGuardianType("shell")) {
      node.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    }
    auto shell = node.Create<ShellGuardian>("shell", name, {});
    return shell.ok() ? *shell : nullptr;
  }
};

// Issue `count` reserve requests from `shell` directly against a *flight*
// port (reserve(passenger, date)), cycling passengers and the given dates.
// Returns completed (replied) requests.
inline int DriveReserves(Guardian& shell, const PortName& flight_port,
                         int count, const std::vector<std::string>& dates,
                         Micros timeout, const std::string& who) {
  int completed = 0;
  RemoteCallOptions options;
  options.timeout = timeout;
  options.max_attempts = 1;
  for (int i = 0; i < count; ++i) {
    auto reply = RemoteCall(
        shell, flight_port, "reserve",
        {Value::Str(who + "-" + std::to_string(i)),
         Value::Str(dates[i % dates.size()])},
        ReservationReplyType(), options);
    if (reply.ok() && reply->command != kFailureCommand) {
      ++completed;
    }
  }
  return completed;
}

}  // namespace guardians

#endif  // GUARDIANS_BENCH_BENCH_UTIL_H_
