// Shared helpers for the experiment benchmarks. Each bench binary
// regenerates one figure/analysis of the paper (see DESIGN.md §4) and
// reports the measured shape through benchmark counters.
#ifndef GUARDIANS_BENCH_BENCH_UTIL_H_
#define GUARDIANS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/airline/airline_system.h"
#include "src/airline/workload.h"
#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"

namespace guardians {

// Machine-readable bench results: each bench binary appends named records
// and a JSON file is written at process exit, so the perf trajectory can be
// tracked across PRs (diff BENCH_*.json between checkouts). Format:
//   {"records": [{"name": "...", "fields": {"k": v, ...}}, ...]}
class BenchJson {
 public:
  explicit BenchJson(std::string path) : path_(std::move(path)) {}
  ~BenchJson() { Flush(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void Record(const std::string& name,
              const std::map<std::string, double>& fields) {
    records_.emplace_back(name, fields);
  }

  void Flush() {
    if (records_.empty()) {
      return;
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      return;  // benches may run in read-only sandboxes; results still print
    }
    std::fputs("{\"records\": [\n", f);
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "  {\"name\": \"%s\", \"fields\": {",
                   records_[i].first.c_str());
      size_t j = 0;
      for (const auto& [key, value] : records_[i].second) {
        std::fprintf(f, "%s\"%s\": %.6g", j++ == 0 ? "" : ", ", key.c_str(),
                     value);
      }
      std::fprintf(f, "}}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fputs("]}\n", f);
    std::fclose(f);
    records_.clear();
  }

 private:
  std::string path_;
  std::vector<std::pair<std::string, std::map<std::string, double>>> records_;
};

// A system with one "clients" node plus whatever the scenario adds.
struct BenchWorld {
  explicit BenchWorld(SystemConfig config) : system(config) {}

  System system;

  // A driver shell guardian on `node` (registers the type if needed).
  Guardian* Shell(NodeRuntime& node, const std::string& name) {
    if (!node.KnowsGuardianType("shell")) {
      node.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    }
    auto shell = node.Create<ShellGuardian>("shell", name, {});
    return shell.ok() ? *shell : nullptr;
  }
};

// Issue `count` reserve requests from `shell` directly against a *flight*
// port (reserve(passenger, date)), cycling passengers and the given dates.
// Returns completed (replied) requests.
inline int DriveReserves(Guardian& shell, const PortName& flight_port,
                         int count, const std::vector<std::string>& dates,
                         Micros timeout, const std::string& who) {
  int completed = 0;
  RemoteCallOptions options;
  options.timeout = timeout;
  options.max_attempts = 1;
  for (int i = 0; i < count; ++i) {
    auto reply = RemoteCall(
        shell, flight_port, "reserve",
        {Value::Str(who + "-" + std::to_string(i)),
         Value::Str(dates[i % dates.size()])},
        ReservationReplyType(), options);
    if (reply.ok() && reply->command != kFailureCommand) {
      ++completed;
    }
  }
  return completed;
}

}  // namespace guardians

#endif  // GUARDIANS_BENCH_BENCH_UTIL_H_
