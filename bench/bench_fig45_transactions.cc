// Experiment FIG45 — Figures 4 and 5: the regional-manager forwarding path
// (reply bypasses the manager) and clerk transactions under message loss.
//
// Paper claims measured here:
//  - "Although a retry may result in a reserve or cancel request being made
//     more than once, no problems result since they are idempotent" —
//     under loss, clerks and the transaction process retry; the counters
//     report how many duplicate performances the flight guardians absorbed
//     and the invariant check confirms the data base stayed consistent.
//  - Transactions complete (with degraded latency) across loss rates that
//     would break a system relying on reliable delivery.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"

namespace guardians {
namespace {

void BM_TransactionsUnderLoss(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  constexpr int kClerks = 4;
  constexpr int kTransactionsPerClerk = 4;

  int64_t completed_total = 0;
  int64_t retries_total = 0;
  int64_t duplicates_total = 0;
  int64_t invariant_failures = 0;

  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 37;
    config.default_link.latency = Micros(300);
    config.default_link.drop_prob = loss;
    auto world = std::make_unique<BenchWorld>(config);

    AirlineParams params;
    params.regions = 2;
    params.flights_per_region = 3;
    params.capacity = 1 << 20;
    params.organization = FlightOrganization::kSerializer;
    params.reserve_timeout = Millis(40);
    params.cancel_attempts = 5;
    params.logging = false;
    auto topology = BuildAirline(world->system, params);
    if (!topology.ok()) {
      state.SkipWithError(topology.status().ToString().c_str());
      return;
    }
    WorkloadParams wl;
    wl.regions = params.regions;
    wl.flights_per_region = params.flights_per_region;
    wl.dates = 6;
    wl.transactions = kClerks * kTransactionsPerClerk;
    wl.ops_per_transaction = 4;
    wl.cancel_fraction = 0.25;
    wl.undo_fraction = 0.1;
    wl.seed = 17;
    auto scripts = GenerateTransactions(wl);

    std::vector<Guardian*> shells;
    for (int c = 0; c < kClerks; ++c) {
      NodeRuntime& node =
          world->system.node(topology->region_nodes[c % params.regions]);
      shells.push_back(world->Shell(node, "clerk-" + std::to_string(c)));
    }
    state.ResumeTiming();

    std::vector<TransSummary> summaries(scripts.size());
    {
      std::vector<std::thread> threads;
      for (int c = 0; c < kClerks; ++c) {
        threads.emplace_back([&, c] {
          for (int t = 0; t < kTransactionsPerClerk; ++t) {
            const size_t index = c * kTransactionsPerClerk + t;
            Clerk clerk(*shells[c],
                        "pax-" + std::to_string(index));
            summaries[index] = clerk.RunTransaction(
                topology->user_ports[c % params.regions], scripts[index],
                Millis(300), /*max_retries=*/4);
          }
        });
      }
      for (auto& thread : threads) {
        thread.join();
      }
    }

    state.PauseTiming();
    for (const auto& summary : summaries) {
      completed_total += summary.completed ? 1 : 0;
      retries_total += summary.retries;
    }
    // Duplicate performances the flight guardians absorbed idempotently
    // (pre_reserved / repeated wait_list / not_reserved outcomes). Scripts
    // contribute a small loss-independent baseline (cancels of flights the
    // passenger never reserved); the loss-driven excess is the retries.
    for (NodeId node_id : topology->region_nodes) {
      NodeRuntime& node = world->system.node(node_id);
      for (GuardianId gid = 2; gid < 64; ++gid) {
        auto* flight =
            dynamic_cast<FlightGuardian*>(node.FindGuardian(gid));
        if (flight == nullptr) {
          continue;
        }
        FlightDb db = flight->SnapshotDb();
        duplicates_total +=
            static_cast<int64_t>(db.GetStats().idempotent_noops);
        if (!db.CheckInvariants()) {
          ++invariant_failures;
        }
      }
    }
    // Per-hop drop-reason breakdown for this run, sourced from the metrics
    // registry: which designed-in loss events (§3.4) the loss rate excited.
    std::printf("--- drop breakdown (loss %d%%) ---\n",
                static_cast<int>(state.range(0)));
    MetricsRegistry& metrics = world->system.metrics();
    for (const char* prefix : {"net.drop.", "deliver.drop."}) {
      for (const auto& [name, value] : metrics.CountersWithPrefix(prefix)) {
        std::printf("  %-32s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
    std::printf("  %-32s %llu\n", "deliver.delivered",
                static_cast<unsigned long long>(
                    metrics.CounterValue("deliver.delivered")));
    // Trace one lost message end to end: every hop up to the drop point,
    // with the drop reason on the last line.
    TraceBuffer& traces = world->system.traces();
    if (auto lost = traces.FindTraceWithPoint("net.drop.")) {
      std::printf("--- sampled lost-message trace ---\n%s",
                  traces.DumpTrace(*lost).c_str());
    } else if (auto dropped = traces.FindTraceWithPoint("port.drop.")) {
      std::printf("--- sampled dropped-at-port trace ---\n%s",
                  traces.DumpTrace(*dropped).c_str());
    }
    world.reset();
    state.ResumeTiming();
  }

  const double runs = static_cast<double>(state.iterations());
  state.counters["loss_pct"] = static_cast<double>(state.range(0));
  state.counters["completed_frac"] = benchmark::Counter(
      static_cast<double>(completed_total) /
      (runs * kClerks * kTransactionsPerClerk));
  state.counters["reserve_retries"] =
      benchmark::Counter(static_cast<double>(retries_total) / runs);
  state.counters["dup_performances"] =
      benchmark::Counter(static_cast<double>(duplicates_total) / runs);
  state.counters["invariant_failures"] =
      benchmark::Counter(static_cast<double>(invariant_failures));
  state.SetItemsProcessed(state.iterations() * kClerks *
                          kTransactionsPerClerk);
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_TransactionsUnderLoss)
    ->ArgNames({"loss_pct"})
    ->Arg(0)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
