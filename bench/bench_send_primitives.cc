// Experiment SEND — Section 3's comparative analysis of the three
// communication primitives:
//
//   1. no-wait send          — sender waits only until the message is
//                              composed; 1 wire message per exchange.
//   2. synchronization send  — sender waits until the target process has
//                              received the message (Hoare); built on the
//                              no-wait send + a receipt ack: 2 wire
//                              messages, sender blocked ≈ 2 × latency.
//   3. remote transaction    — sender waits for the result (Brinch
//                              Hansen); request + response: 2 wire
//                              messages, sender blocked ≈ 2 × latency +
//                              service.
//
// Paper claims measured here:
//  - the no-wait send "can be used to implement the others, but not vice
//    versa (if extra message passing is to be avoided)" — counters report
//    wire messages per logical exchange;
//  - the request-pattern asymmetry: for the "several messages, one
//    response" pattern, k no-wait sends + 1 response costs k+1 messages
//    where k remote invocations would cost 2k.
#include <atomic>
#include <set>
#include <thread>

#include "bench/bench_util.h"
#include "src/sendprims/reliable_send.h"
#include "src/sendprims/sync_send.h"

namespace guardians {
namespace {

PortType SinkPortType() {
  return PortType("sink",
                  {MessageSig{"put", {ArgType::Of(TypeTag::kInt)}, {}},
                   MessageSig{"put_many",
                              {ArgType::Of(TypeTag::kInt),
                               ArgType::Of(TypeTag::kBool)},
                              {"got_all"}},
                   MessageSig{"ask", {ArgType::Of(TypeTag::kInt)},
                              {"answer"}}});
}

PortType SinkReplyType() {
  return PortType("sink_reply",
                  {MessageSig{"answer", {ArgType::Of(TypeTag::kInt)}, {}},
                   MessageSig{"got_all", {ArgType::Of(TypeTag::kInt)}, {}}});
}

// Consumes puts, answers asks, and acknowledges a batch when the final
// put_many of a batch arrives — the "several messages, one response"
// pattern of Section 3.
class SinkGuardian : public Guardian {
 public:
  Status Setup(const ValueList& args) override {
    (void)args;
    AddPort(SinkPortType(), 4096, /*provided=*/true);
    return OkStatus();
  }

  void Main() override {
    int64_t batch_received = 0;
    for (;;) {
      auto received = Receive(port(0), Micros::max());
      if (!received.ok()) {
        return;
      }
      if (received->command == "put") {
        consumed_.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu_);
        distinct_.insert(received->args[0].int_value());
      } else if (received->command == "put_many") {
        ++batch_received;
        consumed_.fetch_add(1);
        if (received->args[1].bool_value() &&
            !received->reply_to.IsNull()) {
          Status st = Send(received->reply_to, "got_all",
                           {Value::Int(batch_received)});
          (void)st;
          batch_received = 0;
        }
      } else if (received->command == "ask") {
        asks_total_.fetch_add(1);
        {
          std::lock_guard<std::mutex> lock(mu_);
          asks_distinct_.insert(received->args[0].int_value());
        }
        if (!received->reply_to.IsNull()) {
          Status st = Send(received->reply_to, "answer",
                           {Value::Int(received->args[0].int_value() + 1)});
          (void)st;
        }
      }
    }
  }

  std::atomic<int64_t> consumed_{0};
  // Executions of "ask": total vs distinct arguments. Their difference is
  // the re-execution count — the number the at-most-once layer must hold
  // at zero however many duplicates and retries hit the port.
  std::atomic<int64_t> asks_total_{0};

  size_t Distinct() const {
    std::lock_guard<std::mutex> lock(mu_);
    return distinct_.size();
  }

  size_t AsksDistinct() const {
    std::lock_guard<std::mutex> lock(mu_);
    return asks_distinct_.size();
  }

 private:
  mutable std::mutex mu_;
  std::set<int64_t> distinct_;
  std::set<int64_t> asks_distinct_;
};

struct SendWorld {
  explicit SendWorld(Micros latency) : world(MakeConfig(latency)) {
    NodeRuntime& a = world.system.AddNode("a");
    NodeRuntime& b = world.system.AddNode("b");
    sink_node = &b;
    b.RegisterGuardianType("sink", MakeFactory<SinkGuardian>());
    driver = world.Shell(a, "driver");
    auto created = b.Create<SinkGuardian>("sink", "sink", {}, false);
    sink = *created;
    sink_port = sink->ProvidedPorts()[0];
  }

  static SystemConfig MakeConfig(Micros latency) {
    SystemConfig config;
    config.seed = 9;
    config.default_link.latency = latency;
    return config;
  }

  uint64_t WireMessages() {
    // Count at the network layer: every fragment of every message.
    return world.system.network().stats().packets_sent;
  }

  BenchWorld world;
  Guardian* driver = nullptr;
  SinkGuardian* sink = nullptr;
  NodeRuntime* sink_node = nullptr;
  PortName sink_port;
};

void ReportPerExchange(benchmark::State& state, uint64_t wire_messages,
                       int64_t exchanges) {
  state.counters["wire_msgs_per_exchange"] = benchmark::Counter(
      static_cast<double>(wire_messages) / static_cast<double>(exchanges));
}

void BM_NoWaitSend(benchmark::State& state) {
  SendWorld world(Micros(state.range(0)));
  int64_t i = 0;
  for (auto _ : state) {
    Status st = world.driver->Send(world.sink_port, "put", {Value::Int(i++)});
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  const uint64_t wire = world.WireMessages();
  // Wait for the sink to drain so the port buffer never overflows between
  // benchmark repetitions.
  world.world.system.network().DrainForTesting();
  state.SetItemsProcessed(state.iterations());
  ReportPerExchange(state, wire, i);
}

void BM_SynchronizationSend(benchmark::State& state) {
  SendWorld world(Micros(state.range(0)));
  int64_t i = 0;
  for (auto _ : state) {
    Status st = SyncSend(*world.driver, world.sink_port, "put",
                         {Value::Int(i++)}, Millis(30000));
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  ReportPerExchange(state, world.WireMessages(), i);
}

void BM_RemoteTransactionSend(benchmark::State& state) {
  SendWorld world(Micros(state.range(0)));
  int64_t i = 0;
  RemoteCallOptions options;
  options.timeout = Millis(30000);
  for (auto _ : state) {
    auto reply = RemoteCall(*world.driver, world.sink_port, "ask",
                            {Value::Int(i++)}, SinkReplyType(), options);
    if (!reply.ok()) {
      state.SkipWithError(reply.status().ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  ReportPerExchange(state, world.WireMessages(), i);
}

// The "several messages, one response" pattern, k=8: with the no-wait send
// this is k requests + 1 response = k+1 messages; a primitive that forces a
// response per message would use 2k.
void BM_BatchPattern(benchmark::State& state) {
  constexpr int kBatch = 8;
  SendWorld world(Micros(state.range(0)));
  Port* reply_port = world.driver->AddPort(SinkReplyType(), 16);
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      const bool last = i == kBatch - 1;
      Status st =
          last ? world.driver->Send(world.sink_port, "put_many",
                                    {Value::Int(i), Value::Bool(true)},
                                    reply_port->name())
               : world.driver->Send(world.sink_port, "put_many",
                                    {Value::Int(i), Value::Bool(false)});
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    auto reply = world.driver->Receive(reply_port, Millis(30000));
    if (!reply.ok() || reply->command != "got_all") {
      state.SkipWithError("batch ack lost");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  ReportPerExchange(state, world.WireMessages(), state.iterations());
  state.counters["batch"] = kBatch;
}

// Section 3's delivery ladder under loss: "The no-wait send can usually
// ensure message delivery. The synchronization send can guarantee delivery
// (if it terminates)." Measures the delivered fraction and the wire cost of
// climbing from usually to always (ReliableSend = sync send + retry).
void BM_DeliveryGuarantee(benchmark::State& state) {
  const bool reliable = state.range(0) != 0;
  const double loss = static_cast<double>(state.range(1)) / 100.0;
  constexpr int kMessages = 60;

  double delivered_frac = 0;
  double wire_per_message = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SendWorld world(Micros(200));
    world.world.system.network().SetLink(
        1, 2, LinkParams{Micros(200), Micros(0), loss, 0, 0});
    state.ResumeTiming();

    for (int i = 0; i < kMessages; ++i) {
      if (reliable) {
        ReliableSendOptions options;
        options.ack_timeout = Millis(20);
        options.max_attempts = 50;
        auto result = ReliableSend(*world.driver, world.sink_port, "put",
                                   {Value::Int(i)}, options);
        benchmark::DoNotOptimize(result);
      } else {
        Status st = world.driver->Send(world.sink_port, "put",
                                       {Value::Int(i)});
        benchmark::DoNotOptimize(st);
      }
    }
    state.PauseTiming();
    world.world.system.network().DrainForTesting();
    // Give the sink process a moment to drain its port.
    const Deadline settle(Millis(500));
    while (world.sink->consumed_.load() < kMessages && !settle.Expired()) {
      std::this_thread::sleep_for(Millis(2));
    }
    // Distinct messages: at-least-once delivery may duplicate, which must
    // not be mistaken for deliveries of lost messages.
    delivered_frac +=
        static_cast<double>(world.sink->Distinct()) / kMessages;
    wire_per_message +=
        static_cast<double>(world.WireMessages()) / kMessages;
    state.ResumeTiming();
  }
  state.counters["reliable"] = reliable ? 1 : 0;
  state.counters["loss_pct"] = static_cast<double>(state.range(1));
  state.counters["delivered_frac"] =
      benchmark::Counter(delivered_frac / state.iterations());
  state.counters["wire_msgs_per_logical"] =
      benchmark::Counter(wire_per_message / state.iterations());
  state.SetItemsProcessed(state.iterations() * kMessages);
}

// Experiment DEDUP — the at-most-once layer under a duplicate storm. A
// sweep over dup_prob (with loss on the heaviest point so retries and
// cached-reply replays really happen) drives tracked remote transactions
// and measures re-executions — total "ask" executions minus distinct ones —
// which the dedup layer must hold at exactly zero.
struct DedupOutcome {
  int64_t logical = 0;     // remote calls issued
  int64_t succeeded = 0;   // calls that got a reply
  int64_t executed = 0;    // "ask" bodies actually run at the sink
  int64_t distinct = 0;    // distinct ask arguments seen
  uint64_t duplicated = 0;  // packets the network duplicated
  uint64_t suppressed = 0;  // duplicates the receiver suppressed
  uint64_t replayed = 0;    // retries answered from the reply cache
};

std::map<int, DedupOutcome>& DedupOutcomes() {
  static auto* outcomes = new std::map<int, DedupOutcome>();
  return *outcomes;
}

void BM_DuplicateStorm(benchmark::State& state) {
  const int dup_pct = static_cast<int>(state.range(0));
  const int loss_pct = static_cast<int>(state.range(1));
  constexpr int kCalls = 120;
  DedupOutcome outcome;
  for (auto _ : state) {
    state.PauseTiming();
    SendWorld world(Micros(200));
    LinkParams link;
    link.latency = Micros(200);
    link.drop_prob = static_cast<double>(loss_pct) / 100.0;
    link.dup_prob = static_cast<double>(dup_pct) / 100.0;
    world.world.system.network().SetLink(1, 2, link);
    RemoteCallOptions options;
    options.timeout = Millis(30);
    options.max_attempts = 50;
    state.ResumeTiming();

    for (int i = 0; i < kCalls; ++i) {
      auto reply = RemoteCall(*world.driver, world.sink_port, "ask",
                              {Value::Int(i)}, SinkReplyType(), options);
      ++outcome.logical;
      if (reply.ok()) {
        ++outcome.succeeded;
      }
    }

    state.PauseTiming();
    world.world.system.network().DrainForTesting();
    outcome.executed += world.sink->asks_total_.load();
    outcome.distinct += static_cast<int64_t>(world.sink->AsksDistinct());
    outcome.duplicated +=
        world.world.system.network().stats().packets_duplicated;
    outcome.suppressed += world.sink_node->stats().duplicates_suppressed;
    outcome.replayed += world.sink_node->stats().replies_replayed;
    state.ResumeTiming();
  }
  state.counters["dup_pct"] = dup_pct;
  state.counters["loss_pct"] = loss_pct;
  state.counters["re_executions"] =
      static_cast<double>(outcome.executed - outcome.distinct);
  state.counters["suppressed"] = static_cast<double>(outcome.suppressed);
  state.counters["replayed"] = static_cast<double>(outcome.replayed);
  state.SetItemsProcessed(state.iterations() * kCalls);
  DedupOutcomes()[dup_pct * 1000 + loss_pct] = outcome;
}

// Verifies the DEDUP property over the collected outcomes and writes
// BENCH_sendprims.json. Returns 0 on success.
int CheckAndRecord() {
  auto& outcomes = DedupOutcomes();
  if (outcomes.empty()) {
    return 0;  // filtered run (--benchmark_filter): nothing to check
  }
  BenchJson json("BENCH_sendprims.json");
  int failures = 0;
  for (const auto& [key, outcome] : outcomes) {
    const int dup_pct = key / 1000;
    const int loss_pct = key % 1000;
    const int64_t re_executions = outcome.executed - outcome.distinct;
    json.Record("sendprims_dedup/dup:" + std::to_string(dup_pct) +
                    "/loss:" + std::to_string(loss_pct),
                {{"dup_pct", static_cast<double>(dup_pct)},
                 {"loss_pct", static_cast<double>(loss_pct)},
                 {"logical", static_cast<double>(outcome.logical)},
                 {"succeeded", static_cast<double>(outcome.succeeded)},
                 {"executed", static_cast<double>(outcome.executed)},
                 {"re_executions", static_cast<double>(re_executions)},
                 {"duplicated", static_cast<double>(outcome.duplicated)},
                 {"suppressed", static_cast<double>(outcome.suppressed)},
                 {"replayed", static_cast<double>(outcome.replayed)}});
    std::printf("DEDUP dup=%d%% loss=%d%%: %lld calls, %lld executed, "
                "%lld re-executions, %llu suppressed, %llu replayed\n",
                dup_pct, loss_pct,
                static_cast<long long>(outcome.logical),
                static_cast<long long>(outcome.executed),
                static_cast<long long>(re_executions),
                static_cast<unsigned long long>(outcome.suppressed),
                static_cast<unsigned long long>(outcome.replayed));
    if (re_executions != 0) {
      std::fprintf(stderr,
                   "DEDUP FAIL: %lld re-executions at dup=%d%% loss=%d%% "
                   "(at-most-once violated)\n",
                   static_cast<long long>(re_executions), dup_pct, loss_pct);
      ++failures;
    }
    if (dup_pct > 0 && outcome.suppressed == 0) {
      std::fprintf(stderr,
                   "DEDUP FAIL: dup=%d%% injected no suppression — the "
                   "sweep did not exercise the dedup layer\n",
                   dup_pct);
      ++failures;
    }
    // An executed op may outnumber the acks (a reply can be lost for good
    // once attempts exhaust) but never the other way around.
    if (outcome.distinct < outcome.succeeded) {
      std::fprintf(stderr,
                   "DEDUP FAIL: %lld acked calls but only %lld distinct "
                   "executions at dup=%d%% loss=%d%%\n",
                   static_cast<long long>(outcome.succeeded),
                   static_cast<long long>(outcome.distinct), dup_pct,
                   loss_pct);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_NoWaitSend)
    ->ArgNames({"link_us"})
    ->Arg(200)
    ->Arg(2000)
    ->Iterations(300)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(guardians::BM_SynchronizationSend)
    ->ArgNames({"link_us"})
    ->Arg(200)
    ->Arg(2000)
    ->Iterations(100)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(guardians::BM_RemoteTransactionSend)
    ->ArgNames({"link_us"})
    ->Arg(200)
    ->Arg(2000)
    ->Iterations(100)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(guardians::BM_BatchPattern)
    ->ArgNames({"link_us"})
    ->Arg(200)
    ->Arg(2000)
    ->Iterations(50)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(guardians::BM_DeliveryGuarantee)
    ->ArgNames({"reliable", "loss_pct"})
    ->Args({0, 10})
    ->Args({1, 10})
    ->Args({0, 30})
    ->Args({1, 30})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(guardians::BM_DuplicateStorm)
    ->ArgNames({"dup_pct", "loss_pct"})
    ->Args({0, 0})
    ->Args({25, 0})
    ->Args({100, 0})
    ->Args({100, 10})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return guardians::CheckAndRecord();
}
