// Experiment ROBUST — Section 2.2: permanence of effect.
//
// (a) Logging overhead: reserve throughput with per-guardian logging off /
//     on, across stable-storage write latencies. Permanence is paid for in
//     synchronous log writes; the experiment puts a number on the paper's
//     design decision to do backup "on a per-guardian basis" only for the
//     resources that need it.
// (b) Recovery time: crash a flight guardian's node after K logged
//     operations and measure Restart() (which replays the log). Expected:
//     linear in K.
// (c) Checkpointing ablation: with periodic checkpoints the replayed
//     suffix — and therefore recovery time — stays bounded.
// (d) Crash-schedule exploration: the full (crashpoint x hit) enumeration
//     of src/fault/explorer.h runs after the benchmarks; its coverage and
//     mean supervised-recovery time land in BENCH_robustness.json, and any
//     permanence violation fails the binary (exit 1) — the bench doubles
//     as a robustness gate.
#include "bench/bench_util.h"
#include "src/fault/explorer.h"

namespace guardians {
namespace {

struct ReplayOutcome {
  int ops = 0;
  int checkpoint_every = 0;
  double restart_ms = 0;
};

std::vector<ReplayOutcome>& ReplayOutcomes() {
  static std::vector<ReplayOutcome> outcomes;
  return outcomes;
}

struct RobustWorld {
  RobustWorld(bool logging, Micros write_latency, int checkpoint_every)
      : world(MakeConfig()) {
    node = &world.system.AddNode("airline");
    node->stable_store().SetWriteLatency(write_latency);
    node->RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
    FlightConfig flight_config;
    flight_config.flight_no = 1;
    flight_config.capacity = 1 << 20;
    flight_config.organization = FlightOrganization::kOneAtATime;
    flight_config.logging = logging;
    flight_config.checkpoint_every = checkpoint_every;
    auto created = node->Create<FlightGuardian>("flight", "f1",
                                                flight_config.ToArgs(),
                                                /*persistent=*/true);
    flight_port = (*created)->ProvidedPorts()[0];
    driver = world.Shell(*node, "driver");
  }

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 21;
    config.default_link.latency = Micros(20);
    return config;
  }

  BenchWorld world;
  NodeRuntime* node = nullptr;
  Guardian* driver = nullptr;
  PortName flight_port;
};

void BM_LoggingOverhead(benchmark::State& state) {
  const bool logging = state.range(0) != 0;
  const auto write_latency = Micros(state.range(1));
  RobustWorld world(logging, write_latency, /*checkpoint_every=*/0);
  RemoteCallOptions options;
  options.timeout = Millis(30000);
  int64_t i = 0;
  for (auto _ : state) {
    auto reply = RemoteCall(
        *world.driver, world.flight_port, "reserve",
        {Value::Str("p" + std::to_string(i)), Value::Str(DateString(0))},
        ReservationReplyType(), options);
    ++i;
    if (!reply.ok()) {
      state.SkipWithError(reply.status().ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["logging"] = logging ? 1 : 0;
  state.counters["write_us"] = static_cast<double>(write_latency.count());
}

void BM_RecoveryReplay(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  const int checkpoint_every = static_cast<int>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto world = std::make_unique<RobustWorld>(true, Micros(0),
                                               checkpoint_every);
    RemoteCallOptions options;
    options.timeout = Millis(30000);
    for (int i = 0; i < ops; ++i) {
      auto reply = RemoteCall(
          *world->driver, world->flight_port, "reserve",
          {Value::Str("p" + std::to_string(i)),
           Value::Str(DateString(i % 16))},
          ReservationReplyType(), options);
      if (!reply.ok()) {
        state.SkipWithError(reply.status().ToString().c_str());
        return;
      }
    }
    world->node->Crash();
    state.ResumeTiming();

    // Timed region: boot + recovery replay of the log.
    const TimePoint t0 = Now();
    Status restarted = world->node->Restart();
    ReplayOutcomes().push_back(
        {ops, checkpoint_every,
         static_cast<double>(ToMicros(Now() - t0)) / 1000.0});

    state.PauseTiming();
    if (!restarted.ok()) {
      state.SkipWithError(restarted.ToString().c_str());
      return;
    }
    // Verify permanence: the recovered DB holds every reservation.
    auto* flight = dynamic_cast<FlightGuardian*>(
        world->node->FindGuardian(world->flight_port.guardian));
    if (flight == nullptr ||
        flight->SnapshotDb().GetStats().reservations != ops) {
      state.SkipWithError("recovery lost reservations");
      return;
    }
    world.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * ops);
  state.counters["logged_ops"] = ops;
  state.counters["checkpoint_every"] = checkpoint_every;
}

}  // namespace

// After the benchmarks: run the exhaustive crash-schedule exploration and
// write everything to BENCH_robustness.json. Returns the process exit
// code — a schedule that violates permanence fails the bench.
int ExploreAndRecord() {
  BenchJson json("BENCH_robustness.json");
  for (const ReplayOutcome& r : ReplayOutcomes()) {
    json.Record("recovery_replay/ops:" + std::to_string(r.ops) +
                    "/checkpoint_every:" + std::to_string(r.checkpoint_every),
                {{"ops", static_cast<double>(r.ops)},
                 {"checkpoint_every", static_cast<double>(r.checkpoint_every)},
                 {"restart_ms", r.restart_ms}});
  }

  ExplorerConfig config;
  auto report = ExploreCrashSchedules(config);
  if (!report.ok()) {
    std::fprintf(stderr, "crash explorer failed to run: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("crash explorer: %s\n", report->Summary().c_str());
  json.Record("crash_explorer",
              {{"sites", static_cast<double>(report->baseline_hits.size())},
               {"schedules", static_cast<double>(report->schedules.size())},
               {"triggered", static_cast<double>(report->triggered)},
               {"failures", static_cast<double>(report->failures)},
               {"mean_recovery_ms", report->mean_recovery_us / 1000.0}});
  return report->failures == 0 &&
                 report->triggered == report->schedules.size()
             ? 0
             : 1;
}

}  // namespace guardians

BENCHMARK(guardians::BM_LoggingOverhead)
    ->ArgNames({"logging", "write_us"})
    ->Args({0, 0})      // no permanence: the baseline
    ->Args({1, 0})      // logging to instantaneous storage
    ->Args({1, 100})    // realistic fast stable storage
    ->Args({1, 1000})   // slow stable storage
    ->Iterations(100)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

BENCHMARK(guardians::BM_RecoveryReplay)
    ->ArgNames({"ops", "checkpoint_every"})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({1024, 0})
    ->Args({1024, 128})  // checkpointing bounds the replayed suffix
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return guardians::ExploreAndRecord();
}
