// Experiment BATCH — batched delivery drains (DESIGN.md §12).
//
// The delivery engine used to pay one shard-lock round-trip, one global
// stats-lock acquisition, one sink call and one receiver condvar wake per
// packet. Batched drains pay each of those once per drained batch instead.
// This bench floods 8 nodes through a 4-shard network with small
// single-fragment messages (the hot-path shape: the per-packet work is
// tiny, so the per-packet *overheads* dominate) and sweeps
// delivery_batch_max. Each node's sink is a faithful miniature of the
// receive path: one mutex held per sink call, per-packet CRC/reassembly/
// decode inside it, then one mailbox push + condvar notify per call with a
// real consumer thread on the other end — the wake that batching amortizes.
//
// Two properties are checked, not just measured, by the custom main:
//  - determinism: loss/corruption/duplication are decided at Send() from
//    one seeded rng, so outcome counts must be bit-identical at every
//    batch size (hard failure if not) — batch_max may only change the
//    cost of the outcomes, never the outcomes;
//  - speedup: delivered messages/sec at batch_max=64 vs batch_max=1 on 4
//    shards is printed and recorded in BENCH_batching.json (hard failure
//    below 1.4x).
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/wire/envelope.h"
#include "src/wire/packet.h"

namespace guardians {
namespace {

constexpr size_t kShards = 4;
constexpr int kNodes = 8;
constexpr int kMessagesPerNode = 25000;
constexpr size_t kBlobBytes = 64;     // small messages: overhead-bound
constexpr uint64_t kMaxPayload = 1024;  // single fragment each

struct RunOutcome {
  uint64_t dropped = 0;
  uint64_t corrupted = 0;
  uint64_t duplicated = 0;
  uint64_t delivered = 0;
  uint64_t decoded = 0;
  double best_msgs_per_sec = 0;
};
std::map<int, RunOutcome>& Outcomes() {
  static std::map<int, RunOutcome> outcomes;
  return outcomes;
}

// The receive side of one node, shaped like NodeRuntime + Port: a batch
// sink that locks once per call, does the real per-packet work (CRC via
// Reassembler::Add, envelope decode), then hands the decoded count to a
// mailbox in one push + one notify — and a consumer thread that drains the
// mailbox, standing in for the guardian process the wake is for.
struct NodeSink {
  std::mutex mu;            // the "reassembler + dedup" lock
  Reassembler reassembler{4096};
  uint64_t decoded = 0;

  std::mutex mailbox_mu;    // the "port" lock
  std::condition_variable mailbox_cv;
  std::deque<uint64_t> mailbox;
  bool closed = false;
  std::thread consumer;

  NodeSink() {
    consumer = std::thread([this] {
      std::unique_lock<std::mutex> lock(mailbox_mu);
      for (;;) {
        mailbox_cv.wait(lock, [this] { return closed || !mailbox.empty(); });
        if (!mailbox.empty()) {
          mailbox.pop_front();
        } else if (closed) {
          return;
        }
      }
    });
  }

  ~NodeSink() {
    {
      std::lock_guard<std::mutex> lock(mailbox_mu);
      closed = true;
    }
    mailbox_cv.notify_all();
    consumer.join();
  }

  void Deliver(std::vector<Packet>&& batch) {
    uint64_t batch_decoded = 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (Packet& packet : batch) {
        auto added = reassembler.Add(std::move(packet));
        if (!added.ok() || !added->has_value()) {
          continue;  // corrupt fragment (or incomplete, not at this size)
        }
        auto env = DecodeEnvelope(**added, DefaultLimits(), nullptr);
        if (env.ok()) {
          ++batch_decoded;
        }
      }
      decoded += batch_decoded;
    }
    if (batch_decoded > 0) {
      {
        std::lock_guard<std::mutex> lock(mailbox_mu);
        mailbox.push_back(batch_decoded);
      }
      mailbox_cv.notify_all();  // ONE wake per sink call: what batching buys
    }
  }
};

void BM_DeliveryBatching(benchmark::State& state) {
  const size_t batch_max = static_cast<size_t>(state.range(0));

  Envelope proto;
  proto.src_node = kNodes + 1;
  proto.target = PortName{1, 1, 0, 0x1234};
  proto.command = "burst";
  proto.args = {Value::Blob(Bytes(kBlobBytes, 0x5C))};
  auto encoded = EncodeEnvelope(proto, DefaultLimits());
  if (!encoded.ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  // One shared buffer; every Fragment below slices it (refbumps, no clones).
  const BufferSlice message(std::move(*encoded));

  RunOutcome outcome;
  for (auto _ : state) {
    Network network(/*seed=*/4242, nullptr, nullptr, kShards, batch_max);
    // Zero latency: packets are due the moment they are sent, so the
    // workers drain continuously and the engine itself is the bottleneck.
    // A pinch of loss, corruption and duplication keeps the determinism
    // check honest.
    network.SetDefaultLink(
        LinkParams{Micros(0), Micros(0), 0.01, 0.005, 0, 0.01});
    std::vector<NodeId> dsts;
    std::vector<std::unique_ptr<NodeSink>> sinks;
    for (int i = 0; i < kNodes; ++i) {
      const NodeId id = network.AddNode("n" + std::to_string(i));
      auto sink = std::make_unique<NodeSink>();
      NodeSink* raw = sink.get();
      network.SetBatchSink(id, [raw](std::vector<Packet>&& batch) {
        raw->Deliver(std::move(batch));
      });
      dsts.push_back(id);
      sinks.push_back(std::move(sink));
    }
    const NodeId sender = network.AddNode("sender");

    // Pre-build every packet: encoding and fragmentation are send-side
    // work the batching PR does not touch, and at 64-byte payloads they
    // would otherwise dominate the injection loop and mask the engine.
    // The Send() calls — where every wire outcome is rolled — stay inside
    // the timed region, in a fixed order, so determinism is still what is
    // being exercised.
    std::vector<Packet> prebuilt;
    prebuilt.reserve(static_cast<size_t>(kMessagesPerNode) * kNodes);
    uint64_t msg_id = 0;
    for (int m = 0; m < kMessagesPerNode; ++m) {
      for (const NodeId dst : dsts) {
        auto packets = Fragment(message, ++msg_id, sender, dst, kMaxPayload);
        for (auto& packet : packets) {
          prebuilt.push_back(std::move(packet));
        }
      }
    }

    const TimePoint begin = Now();
    for (const Packet& packet : prebuilt) {
      network.Send(packet);  // by-value copy: the prototype stays intact
    }
    network.DrainForTesting();
    const double seconds =
        static_cast<double>(ToMicros(Now() - begin)) / 1e6;
    state.SetIterationTime(seconds);

    const NetworkStats stats = network.stats();
    outcome.dropped = stats.packets_dropped;
    outcome.corrupted = stats.packets_corrupted;
    outcome.duplicated = stats.packets_duplicated;
    outcome.delivered = stats.packets_delivered;
    outcome.decoded = 0;
    for (const auto& sink : sinks) {
      outcome.decoded += sink->decoded;
    }
    const double mps =
        seconds > 0 ? static_cast<double>(outcome.decoded) / seconds : 0;
    if (mps > outcome.best_msgs_per_sec) {
      outcome.best_msgs_per_sec = mps;
    }
  }

  state.counters["batch_max"] = static_cast<double>(batch_max);
  state.counters["delivered"] = static_cast<double>(outcome.delivered);
  state.counters["decoded"] = static_cast<double>(outcome.decoded);
  state.counters["delivered_msgs_per_s"] =
      benchmark::Counter(outcome.best_msgs_per_sec);
  state.SetItemsProcessed(state.iterations() * kMessagesPerNode * kNodes);
  Outcomes()[static_cast<int>(batch_max)] = outcome;
}

// Verifies the two BATCH properties over the collected outcomes and writes
// BENCH_batching.json. Returns 0 on success.
int CheckAndRecord() {
  auto& outcomes = Outcomes();
  if (outcomes.empty()) {
    return 0;  // filtered run (--benchmark_filter): nothing to check
  }
  BenchJson json("BENCH_batching.json");
  int failures = 0;
  const RunOutcome* base = nullptr;
  for (const auto& [batch_max, outcome] : outcomes) {
    json.Record("delivery_batching/batch_max:" + std::to_string(batch_max),
                {{"batch_max", static_cast<double>(batch_max)},
                 {"dropped", static_cast<double>(outcome.dropped)},
                 {"corrupted", static_cast<double>(outcome.corrupted)},
                 {"duplicated", static_cast<double>(outcome.duplicated)},
                 {"delivered", static_cast<double>(outcome.delivered)},
                 {"decoded", static_cast<double>(outcome.decoded)},
                 {"msgs_per_sec", outcome.best_msgs_per_sec}});
    if (base == nullptr) {
      base = &outcome;
      continue;
    }
    if (outcome.dropped != base->dropped ||
        outcome.corrupted != base->corrupted ||
        outcome.duplicated != base->duplicated ||
        outcome.delivered != base->delivered ||
        outcome.decoded != base->decoded) {
      std::fprintf(
          stderr,
          "BATCH FAIL: outcomes at batch_max=%d diverge from baseline "
          "(drop %llu vs %llu, corrupt %llu vs %llu, dup %llu vs %llu, "
          "delivered %llu vs %llu, decoded %llu vs %llu)\n",
          batch_max, static_cast<unsigned long long>(outcome.dropped),
          static_cast<unsigned long long>(base->dropped),
          static_cast<unsigned long long>(outcome.corrupted),
          static_cast<unsigned long long>(base->corrupted),
          static_cast<unsigned long long>(outcome.duplicated),
          static_cast<unsigned long long>(base->duplicated),
          static_cast<unsigned long long>(outcome.delivered),
          static_cast<unsigned long long>(base->delivered),
          static_cast<unsigned long long>(outcome.decoded),
          static_cast<unsigned long long>(base->decoded));
      ++failures;
    }
  }
  if (outcomes.count(1) != 0 && outcomes.count(64) != 0) {
    const double speedup =
        outcomes[64].best_msgs_per_sec / outcomes[1].best_msgs_per_sec;
    json.Record("delivery_batching/speedup_64v1", {{"speedup", speedup}});
    std::printf(
        "BATCH: delivered-messages/sec at batch_max=64 vs 1 on %zu shards "
        "= %.2fx (outcome counts identical across batch sizes)\n",
        kShards, speedup);
    if (speedup < 1.4) {
      std::fprintf(stderr, "BATCH FAIL: speedup %.2fx < 1.4x floor\n",
                   speedup);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_DeliveryBatching)
    ->ArgNames({"batch_max"})
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return guardians::CheckAndRecord();
}
