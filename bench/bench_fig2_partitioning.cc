// Experiment FIG2 — Figure 2: regionally partitioned data base vs. a
// single centralized guardian.
//
// Paper claims (Section 1, advantages 1 & 2): a distributed organization
// gives *reduced contention* (each division's unit runs on its own
// computer) and *speed of access* (the unit can be located physically close
// to the division). The partitioned airline of Figure 2 realizes both.
//
// Workload: R clerk sites, each colocated with its region's node. Every
// request is a reserve on a flight chosen from the clerk's own region with
// probability `local`, otherwise from a random region. Baseline: the same
// flights all live at one central node; clerks reach it over the wide-area
// link.
//
// Expected shape: partitioned-with-high-locality wins on latency (local
// link ≈ 50us vs. WAN ≈ 3ms) and on throughput (R service points); as
// locality drops the advantage shrinks toward the centralized baseline.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"

namespace guardians {
namespace {

constexpr int kRegions = 3;
constexpr int kFlightsPerRegion = 2;
constexpr int kRequestsPerClerk = 20;
constexpr auto kLocalLatency = Micros(50);
constexpr auto kWanLatency = Millis(3);

// mode 0: centralized; mode 1..: partitioned with locality percent arg.
void BM_Partitioning(benchmark::State& state) {
  const bool centralized = state.range(0) == 0;
  const double locality = static_cast<double>(state.range(1)) / 100.0;

  int64_t total_requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 7;
    config.default_link.latency = kWanLatency;
    auto world = std::make_unique<BenchWorld>(config);

    AirlineParams params;
    params.regions = centralized ? 1 : kRegions;
    params.flights_per_region = centralized
                                    ? kRegions * kFlightsPerRegion
                                    : kFlightsPerRegion;
    params.capacity = 1 << 20;
    params.organization = FlightOrganization::kSerializer;
    params.flight_service_time = Micros(500);
    params.logging = false;
    auto topology = BuildAirline(world->system, params);
    if (!topology.ok()) {
      state.SkipWithError(topology.status().ToString().c_str());
      return;
    }

    // Clerk sites: one node per region, near its own region's node.
    std::vector<NodeId> clerk_nodes;
    std::vector<Guardian*> shells;
    for (int r = 0; r < kRegions; ++r) {
      NodeRuntime& site = world->system.AddNode("site-" + std::to_string(r));
      if (centralized) {
        // Only site 0 is physically near the central machine; the other
        // divisions reach it over the WAN — the situation Figure 2's
        // partitioning is designed to avoid.
        if (r == 0) {
          world->system.network().SetLink(
              site.id(), topology->region_nodes[0],
              LinkParams{kLocalLatency, Micros(0), 0, 0, 0});
        }
      } else {
        // Each division's unit is located physically close to it.
        world->system.network().SetLink(
            site.id(), topology->region_nodes[r],
            LinkParams{kLocalLatency, Micros(0), 0, 0, 0});
      }
      clerk_nodes.push_back(site.id());
      shells.push_back(world->Shell(site, "clerk-" + std::to_string(r)));
    }
    Rng rng(13);
    state.ResumeTiming();

    std::atomic<int64_t> latency_us_total{0};
    {
      std::vector<std::thread> threads;
      for (int r = 0; r < kRegions; ++r) {
        // Pre-draw each clerk's flight choices deterministically.
        std::vector<int64_t> flights;
        for (int i = 0; i < kRequestsPerClerk; ++i) {
          const int region =
              centralized
                  ? 0
                  : (rng.NextBool(locality)
                         ? r
                         : static_cast<int>(rng.NextBelow(kRegions)));
          flights.push_back(FlightNo(
              region, static_cast<int>(rng.NextBelow(kFlightsPerRegion))));
        }
        threads.emplace_back([&, r, flights] {
          RemoteCallOptions options;
          options.timeout = Millis(30000);
          for (int i = 0; i < kRequestsPerClerk; ++i) {
            const int target_region =
                centralized ? 0 : RegionOfFlight(flights[i]);
            const TimePoint begin = Now();
            auto reply = RemoteCall(
                *shells[r], topology->regional_ports[target_region],
                "reserve",
                {Value::Int(flights[i]),
                 Value::Str("p" + std::to_string(r) + "-" +
                            std::to_string(i)),
                 Value::Str(DateString(i % 4))},
                ReservationReplyType(), options);
            benchmark::DoNotOptimize(reply);
            latency_us_total.fetch_add(ToMicros(Now() - begin));
          }
        });
      }
      for (auto& thread : threads) {
        thread.join();
      }
    }
    total_requests += kRegions * kRequestsPerClerk;
    state.counters["mean_req_ms"] = benchmark::Counter(
        static_cast<double>(latency_us_total.load()) / 1000.0 /
        (kRegions * kRequestsPerClerk));

    state.PauseTiming();
    world.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(total_requests);
  state.counters["locality_pct"] = static_cast<double>(state.range(1));
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_Partitioning)
    ->ArgNames({"centralized", "locality"})
    ->Args({1, 100})  // Figure 2, all traffic local
    ->Args({1, 50})   // mixed
    ->Args({1, 0})    // no locality: partitioning without placement benefit
    ->Args({0, 100})  // centralized baseline (locality is irrelevant)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
