// Experiment DEADLINE — end-to-end deadline propagation under overload.
//
// DESIGN.md §16 threads a remaining-budget field through the wire so a
// receiver can shed work whose caller has already given up: expired
// envelopes are dropped before the dedup gate and before dispatch, and a
// budget that dies while queued is discarded at dequeue instead of being
// executed. This bench drives one slow sink (fixed per-message service
// time) from a burst sender at 1x and 2x the sink's capacity and measures
// goodput (in-deadline executions per second) plus the §16 wasted-work
// story: the 2x leg is run once with the excess load carrying doomed
// budgets (shedding on) and once with the excess load unbudgeted (the
// pre-§16 behaviour, where the sink burns service time on work nobody is
// waiting for).
//
// Four properties are checked, not just measured, by the custom main
// (hard failure, exit 1):
//  - no expired op produces an effect: zero doomed messages execute, and
//    every one is accounted for in deliver.expired.shed;
//  - goodput holds under 2x offered load: in-deadline goodput with
//    shedding is within 10% of the 1x baseline — expired work costs the
//    sink (almost) nothing;
//  - queue-death is lazy but real: a budget that dies while queued is
//    discarded at dequeue (deliver.expired.queue), never executed;
//  - determinism survives: shed/delivery counts of a seeded burst are
//    bit-identical across delivery_shards {1,4} x delivery_batch_max
//    {1,64}, and on a simulated clock vs the wall clock.
// Results land in BENCH_deadline.json for cross-PR tracking.
#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"

namespace guardians {
namespace {

constexpr auto kServiceTime = Micros(150);  // sink's per-message work
constexpr int kHealthy = 600;               // 1x load: the sink can keep up
constexpr auto kHealthyBudget = Micros(10'000'000);  // never expires in-run
constexpr auto kLinkLatency = Micros(100);
// Doomed budget: below the link latency, so every doomed message ages out
// in flight and must be shed at delivery — deterministically, because the
// shed decision compares two constants (budget vs latency).
constexpr uint64_t kDoomedBudget = 1;

PortType WorkPortType() {
  return PortType("overload_sink",
                  {MessageSig{"work", {ArgType::Of(TypeTag::kString)}, {}}});
}

struct LegOutcome {
  double elapsed_s = 0;       // first send -> last healthy execution
  double goodput = 0;         // healthy (in-deadline) executions per second
  double healthy_executed = 0;
  double doomed_executed = 0;      // must stay 0: expired ops have no effect
  double unbudgeted_executed = 0;  // pre-§16 wasted work (leg C only)
  double expired_shed = 0;         // deliver.expired.shed
  double expired_queue = 0;        // deliver.expired.queue
};

enum class Leg { kBaseline = 0, kOverloadShed = 1, kOverloadUnbudgeted = 2 };

std::map<int, LegOutcome>& Outcomes() {
  static std::map<int, LegOutcome> outcomes;
  return outcomes;
}

// One leg: burst-send the workload into the sink's port, then measure the
// wall time until the sink has executed every healthy message. kBaseline
// sends kHealthy in-deadline messages; the overload legs interleave one
// extra message per healthy one (2x offered load) — doomed 1us budgets
// for kOverloadShed, no budget at all for kOverloadUnbudgeted.
LegOutcome RunLeg(Leg leg) {
  SystemConfig config;
  config.seed = 47;
  config.default_link.latency = kLinkLatency;
  BenchWorld world(config);
  NodeRuntime& sender_node = world.system.AddNode("senders");
  NodeRuntime& sink_node = world.system.AddNode("sink");
  Guardian* sender = world.Shell(sender_node, "sender");
  Guardian* sink = world.Shell(sink_node, "sink");
  Port* target = sink->AddPort(WorkPortType(), /*capacity=*/2048);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> healthy{0};
  std::atomic<uint64_t> doomed{0};
  std::atomic<uint64_t> unbudgeted{0};
  std::thread consumer([&] {
    while (!stop.load()) {
      auto got = sink->Receive(target, Millis(20));
      if (!got.ok() || got->args.empty()) {
        continue;
      }
      // The service time is paid per *executed* message; a shed or
      // discarded one must never reach this line.
      std::this_thread::sleep_for(kServiceTime);
      const std::string& id = got->args[0].string_value();
      switch (id.empty() ? '?' : id[0]) {
        case 'h': healthy.fetch_add(1); break;
        case 'x': doomed.fetch_add(1); break;
        case 'u': unbudgeted.fetch_add(1); break;
        default: break;
      }
    }
  });

  auto send = [&](const std::string& id, uint64_t budget_micros) {
    (void)sender->SendFull(target->name(), "work", {Value::Str(id)},
                           PortName{}, PortName{},
                           sender_node.NextDedupSeq(), budget_micros);
  };
  const TimePoint start = Now();
  for (int i = 0; i < kHealthy; ++i) {
    send("h" + std::to_string(i),
         static_cast<uint64_t>(kHealthyBudget.count()));
    if (leg == Leg::kOverloadShed) {
      send("x" + std::to_string(i), kDoomedBudget);
    } else if (leg == Leg::kOverloadUnbudgeted) {
      send("u" + std::to_string(i), /*budget_micros=*/0);
    }
  }
  // Goodput clock stops when the last *healthy* message has executed; the
  // unbudgeted leg keeps draining past that point (its excess work cannot
  // expire, so the sink must grind through all of it eventually).
  const Deadline give_up(Micros(30'000'000));
  while (healthy.load() < static_cast<uint64_t>(kHealthy) &&
         !give_up.Expired()) {
    std::this_thread::sleep_for(Millis(1));
  }
  const double elapsed_s =
      static_cast<double>(ToMicros(Now() - start)) / 1e6;
  if (leg == Leg::kOverloadUnbudgeted) {
    while (unbudgeted.load() < static_cast<uint64_t>(kHealthy) &&
           !give_up.Expired()) {
      std::this_thread::sleep_for(Millis(1));
    }
  }
  world.system.WaitQuiescent(Millis(5000));
  stop.store(true);
  consumer.join();

  LegOutcome out;
  out.elapsed_s = elapsed_s;
  out.healthy_executed = static_cast<double>(healthy.load());
  out.goodput = elapsed_s > 0 ? out.healthy_executed / elapsed_s : 0;
  out.doomed_executed = static_cast<double>(doomed.load());
  out.unbudgeted_executed = static_cast<double>(unbudgeted.load());
  out.expired_shed = static_cast<double>(
      world.system.metrics().CounterValue("deliver.expired.shed"));
  out.expired_queue = static_cast<double>(
      world.system.metrics().CounterValue("deliver.expired.queue"));
  return out;
}

void BM_Overload(benchmark::State& state) {
  const Leg leg = static_cast<Leg>(state.range(0));
  LegOutcome out;
  for (auto _ : state) {
    out = RunLeg(leg);
    state.SetIterationTime(out.elapsed_s);
  }
  state.counters["goodput_msgs_per_s"] = benchmark::Counter(out.goodput);
  state.counters["expired_shed"] = out.expired_shed;
  state.counters["wasted_executions"] =
      out.doomed_executed + out.unbudgeted_executed;
  state.SetItemsProcessed(static_cast<int64_t>(out.healthy_executed));
  Outcomes()[static_cast<int>(leg)] = out;
}

// Queue-death micro-scenario: two messages land while the sink is away; by
// the time it dequeues, the short budget has died in the queue. The dead
// entry must be lazily discarded at dequeue (deliver.expired.queue), and
// only the live message may execute.
bool CheckQueueDeath(BenchJson* json) {
  SystemConfig config;
  config.seed = 48;
  config.default_link.latency = kLinkLatency;
  BenchWorld world(config);
  NodeRuntime& sender_node = world.system.AddNode("senders");
  NodeRuntime& sink_node = world.system.AddNode("sink");
  Guardian* sender = world.Shell(sender_node, "sender");
  Guardian* sink = world.Shell(sink_node, "sink");
  Port* target = sink->AddPort(WorkPortType(), /*capacity=*/16);

  // FIFO: the short-budget message is pushed first, so it is popped first.
  (void)sender->SendFull(target->name(), "work", {Value::Str("dies")},
                         PortName{}, PortName{}, sender_node.NextDedupSeq(),
                         /*budget=*/ToMicros(Millis(5)));
  (void)sender->SendFull(target->name(), "work", {Value::Str("lives")},
                         PortName{}, PortName{}, sender_node.NextDedupSeq(),
                         /*budget=*/ToMicros(Micros(10'000'000)));
  world.system.WaitQuiescent(Millis(2000));
  std::this_thread::sleep_for(Millis(20));  // 4x the short budget: it died

  auto got = sink->Receive(target, Millis(500));
  const bool live_first = got.ok() && !got->args.empty() &&
                          got->args[0].string_value() == "lives";
  const double discarded = static_cast<double>(
      world.system.metrics().CounterValue("deliver.expired.queue"));
  json->Record("deadline/queue_death",
               {{"discarded_at_dequeue", discarded},
                {"live_executed", live_first ? 1.0 : 0.0}});
  if (!live_first || discarded != 1.0) {
    std::fprintf(stderr,
                 "DEADLINE FAIL: queue-death leg expected 1 dequeue "
                 "discard + the live message (got discarded=%.0f, "
                 "live=%d)\n",
                 discarded, live_first ? 1 : 0);
    return false;
  }
  return true;
}

// The determinism leg: a seeded doomed/healthy burst replayed over the
// delivery grid — and once on a simulated clock — must produce identical
// shed and delivery counts everywhere, because the shed decision compares
// the wire budget against the (constant) link latency, never against a
// host-timing artifact.
struct DetCounts {
  NetworkStats net;
  uint64_t expired_shed = 0;
  uint64_t expired_queue = 0;
  uint64_t port_full = 0;
  bool operator==(const DetCounts& o) const {
    return net.packets_sent == o.net.packets_sent &&
           net.packets_delivered == o.net.packets_delivered &&
           net.packets_dropped == o.net.packets_dropped &&
           expired_shed == o.expired_shed &&
           expired_queue == o.expired_queue && port_full == o.port_full;
  }
};

DetCounts RunDeterminismLeg(size_t shards, size_t batch_max,
                            SimulatedClock* sim) {
  SystemConfig config;
  config.seed = 49;
  config.delivery_shards = shards;
  config.delivery_batch_max = batch_max;
  config.default_link.latency = kLinkLatency;
  config.sim_clock = sim;
  BenchWorld world(config);
  NodeRuntime& sender_node = world.system.AddNode("senders");
  NodeRuntime& sink_node = world.system.AddNode("sink");
  Guardian* sender = world.Shell(sender_node, "sender");
  Guardian* sink = world.Shell(sink_node, "sink");
  Port* target = sink->AddPort(WorkPortType(), /*capacity=*/2048);
  for (int i = 0; i < 120; ++i) {
    const bool doom = (i % 2) == 1;
    (void)sender->SendFull(
        target->name(), "work",
        {Value::Str((doom ? "x" : "h") + std::to_string(i))}, PortName{},
        PortName{}, sender_node.NextDedupSeq(),
        doom ? kDoomedBudget
             : static_cast<uint64_t>(kHealthyBudget.count()));
  }
  world.system.WaitQuiescent(Millis(5000));
  DetCounts c;
  c.net = world.system.network().stats();
  c.expired_shed =
      world.system.metrics().CounterValue("deliver.expired.shed");
  c.expired_queue =
      world.system.metrics().CounterValue("deliver.expired.queue");
  c.port_full =
      world.system.metrics().CounterValue("deliver.drop.port_full");
  return c;
}

int CheckAndRecord() {
  auto& outcomes = Outcomes();
  if (outcomes.empty()) {
    return 0;  // filtered run (--benchmark_filter): nothing to check
  }
  BenchJson json("BENCH_deadline.json");
  int failures = 0;
  static const char* const kLegNames[] = {"baseline_1x", "overload_2x_shed",
                                          "overload_2x_unbudgeted"};
  for (const auto& [leg, out] : outcomes) {
    json.Record(std::string("deadline/") + kLegNames[leg],
                {{"goodput_msgs_per_s", out.goodput},
                 {"elapsed_s", out.elapsed_s},
                 {"healthy_executed", out.healthy_executed},
                 {"doomed_executed", out.doomed_executed},
                 {"unbudgeted_executed", out.unbudgeted_executed},
                 {"expired_shed", out.expired_shed},
                 {"expired_queue", out.expired_queue}});
  }

  const auto base = outcomes.find(static_cast<int>(Leg::kBaseline));
  const auto shed = outcomes.find(static_cast<int>(Leg::kOverloadShed));
  const auto unb =
      outcomes.find(static_cast<int>(Leg::kOverloadUnbudgeted));
  if (shed != outcomes.end()) {
    // No expired op produces an effect, and every doomed message is
    // accounted for by the shed path (delivery or queue discard).
    if (shed->second.doomed_executed != 0) {
      std::fprintf(stderr,
                   "DEADLINE FAIL: %.0f expired messages executed (must "
                   "be 0)\n",
                   shed->second.doomed_executed);
      ++failures;
    }
    const double accounted =
        shed->second.expired_shed + shed->second.expired_queue;
    if (accounted != static_cast<double>(kHealthy)) {
      std::fprintf(stderr,
                   "DEADLINE FAIL: %d doomed messages sent but %.0f shed "
                   "(%.0f delivery + %.0f queue)\n",
                   kHealthy, accounted, shed->second.expired_shed,
                   shed->second.expired_queue);
      ++failures;
    }
  }
  if (base != outcomes.end() && shed != outcomes.end()) {
    const double retention =
        base->second.goodput > 0
            ? shed->second.goodput / base->second.goodput
            : 0;
    json.Record("deadline/goodput_retention_2x", {{"ratio", retention}});
    std::printf("DEADLINE: goodput at 2x load with shedding = %.0f msgs/s "
                "(%.0f%% of the 1x baseline %.0f)\n",
                shed->second.goodput, retention * 100,
                base->second.goodput);
    if (retention < 0.9) {
      std::fprintf(stderr,
                   "DEADLINE FAIL: goodput at 2x load is %.0f%% of the "
                   "in-deadline baseline (< 90%%)\n",
                   retention * 100);
      ++failures;
    }
    if (unb != outcomes.end()) {
      // The pre-§16 story, recorded for the wasted-work table (not a hard
      // gate — it is a measurement of the *absence* of shedding).
      const double unb_retention =
          base->second.goodput > 0
              ? unb->second.goodput / base->second.goodput
              : 0;
      json.Record("deadline/unbudgeted_wasted_work",
                  {{"wasted_executions", unb->second.unbudgeted_executed},
                   {"goodput_retention", unb_retention}});
      std::printf("DEADLINE: without budgets the same 2x load wastes %.0f "
                  "executions and holds %.0f%% of baseline goodput\n",
                  unb->second.unbudgeted_executed, unb_retention * 100);
    }
  }

  if (!CheckQueueDeath(&json)) {
    ++failures;
  }

  // Determinism across the delivery grid and across clock sources.
  const DetCounts baseline = RunDeterminismLeg(1, 1, nullptr);
  bool identical = true;
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    for (const size_t batch : {size_t{1}, size_t{64}}) {
      if (shards == 1 && batch == 1) {
        continue;
      }
      const DetCounts probe = RunDeterminismLeg(shards, batch, nullptr);
      if (!(probe == baseline)) {
        std::fprintf(stderr,
                     "DEADLINE FAIL: counts diverge at shards=%zu "
                     "batch=%zu (shed %llu vs %llu, delivered %llu vs "
                     "%llu)\n",
                     shards, batch,
                     static_cast<unsigned long long>(probe.expired_shed),
                     static_cast<unsigned long long>(baseline.expired_shed),
                     static_cast<unsigned long long>(
                         probe.net.packets_delivered),
                     static_cast<unsigned long long>(
                         baseline.net.packets_delivered));
        identical = false;
      }
    }
  }
  {
    SimulatedClock sim;
    const DetCounts virt = RunDeterminismLeg(4, 64, &sim);
    if (!(virt == baseline)) {
      std::fprintf(stderr,
                   "DEADLINE FAIL: simulated-clock counts diverge from "
                   "wall (shed %llu vs %llu)\n",
                   static_cast<unsigned long long>(virt.expired_shed),
                   static_cast<unsigned long long>(baseline.expired_shed));
      identical = false;
    }
  }
  json.Record("deadline/determinism",
              {{"expired_shed", static_cast<double>(baseline.expired_shed)},
               {"delivered",
                static_cast<double>(baseline.net.packets_delivered)},
               {"identical", identical ? 1.0 : 0.0}});
  if (identical) {
    std::printf("DEADLINE: shed/delivery counts bit-identical across "
                "shards {1,4} x batch {1,64} and wall vs simulated clock "
                "(shed %llu of %llu delivered)\n",
                static_cast<unsigned long long>(baseline.expired_shed),
                static_cast<unsigned long long>(
                    baseline.net.packets_delivered));
  } else {
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_Overload)
    ->ArgNames({"leg"})
    ->Args({0})   // baseline: 1x, all in-deadline
    ->Args({1})   // 2x offered load, excess carries doomed budgets
    ->Args({2})   // 2x offered load, excess unbudgeted (pre-§16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return guardians::CheckAndRecord();
}
