// Experiment FIG3 — Figure 3: guardian creation.
//
// Paper rule: a guardian is created at the node of its creator; to populate
// a *remote* node you message that node's primordial guardian, which
// creates on your behalf (preserving autonomy). So local creation costs no
// messages at all, while remote creation costs one request/response pair
// across the network and is subject to the admission policy.
//
// Expected shape: local creation is microseconds (bounded by port setup);
// remote creation ≈ 2 × link latency + local creation; a refusing
// admission policy costs the same round trip and creates nothing.
#include "bench/bench_util.h"

namespace guardians {
namespace {

PortType NoopPortType() {
  return PortType("noop", {MessageSig{"poke", {}, {}}});
}

class NoopGuardian : public Guardian {
 public:
  Status Setup(const ValueList& args) override {
    (void)args;
    AddPort(NoopPortType(), 8, /*provided=*/true);
    return OkStatus();
  }
};

void BM_LocalCreate(benchmark::State& state) {
  SystemConfig config;
  config.default_link.latency = Millis(1);
  BenchWorld world(config);
  NodeRuntime& node = world.system.AddNode("n");
  node.RegisterGuardianType("noop", MakeFactory<NoopGuardian>());
  int64_t i = 0;
  for (auto _ : state) {
    auto created = node.CreateGuardian("noop", "g" + std::to_string(i++),
                                       {}, false);
    benchmark::DoNotOptimize(created);
    if (!created.ok()) {
      state.SkipWithError("create failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RemoteCreate(benchmark::State& state) {
  const auto latency = Micros(state.range(0));
  SystemConfig config;
  config.default_link.latency = latency;
  BenchWorld world(config);
  NodeRuntime& here = world.system.AddNode("here");
  NodeRuntime& there = world.system.AddNode("there");
  there.RegisterGuardianType("noop", MakeFactory<NoopGuardian>());
  Guardian* driver = world.Shell(here, "driver");
  int64_t i = 0;
  for (auto _ : state) {
    auto ports = CreateGuardianAt(*driver, there.PrimordialPort(), "noop",
                                  "g" + std::to_string(i++), {}, false,
                                  Millis(30000));
    if (!ports.ok()) {
      state.SkipWithError("remote create failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["link_us"] = static_cast<double>(latency.count());
}

void BM_RemoteCreateRefused(benchmark::State& state) {
  SystemConfig config;
  config.default_link.latency = Millis(1);
  BenchWorld world(config);
  NodeRuntime& here = world.system.AddNode("here");
  NodeRuntime& there = world.system.AddNode("there");
  there.RegisterGuardianType("noop", MakeFactory<NoopGuardian>());
  // The owner says no (autonomy, Section 1.1).
  there.SetAdmissionPolicy([](const std::string&, NodeId) { return false; });
  Guardian* driver = world.Shell(here, "driver");
  for (auto _ : state) {
    auto ports = CreateGuardianAt(*driver, there.PrimordialPort(), "noop",
                                  "g", {}, false, Millis(30000));
    if (ports.ok() ||
        ports.status().code() != Code::kPermissionDenied) {
      state.SkipWithError("expected refusal");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace
}  // namespace guardians

BENCHMARK(guardians::BM_LocalCreate)
    ->Iterations(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(guardians::BM_RemoteCreate)
    ->ArgNames({"link_us"})
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(guardians::BM_RemoteCreateRefused)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

BENCHMARK_MAIN();
