// Office automation demo (Section 3.3's transmittable abstract values):
// documents mailed between offices whose nodes use *different internal
// representations*; a filing cabinet handing out sealed tokens; an index
// sent as an associative memory that is a hash table at one office and a
// tree at the other; and a type that refuses transmission outright.
//
//   $ ./office_mail
#include <cstdio>

#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"
#include "src/transmit/assoc_memory.h"
#include "src/transmit/document.h"

using namespace guardians;

namespace {

// cabinet = port { file_doc(document) replies(filed);
//                  fetch(token) replies(doc_is, bad_token);
//                  take_index(assoc_memory) replies(indexed) }
PortType CabinetPortType() {
  return PortType(
      "cabinet",
      {MessageSig{"file_doc",
                  {ArgType::AbstractOf(kDocumentTypeName)},
                  {"filed"}},
       MessageSig{"fetch", {ArgType::Of(TypeTag::kToken)},
                  {"doc_is", "bad_token"}},
       MessageSig{"take_index",
                  {ArgType::AbstractOf(kAssocMemoryTypeName)},
                  {"indexed"}},
       MessageSig{"gossip", {ArgType::Any()}, {}}});
}

PortType CabinetReplyType() {
  return PortType(
      "cabinet_reply",
      {MessageSig{"filed", {ArgType::Of(TypeTag::kToken)}, {}},
       MessageSig{"doc_is", {ArgType::AbstractOf(kDocumentTypeName)}, {}},
       MessageSig{"bad_token", {}, {}},
       MessageSig{"indexed", {ArgType::Of(TypeTag::kInt)}, {}}});
}

class CabinetGuardian : public Guardian {
 public:
  Status Setup(const ValueList& args) override {
    (void)args;
    AddPort(CabinetPortType(), Port::kDefaultCapacity, /*provided=*/true);
    return OkStatus();
  }

  void Main() override {
    for (;;) {
      auto received = Receive(port(0), Micros::max());
      if (!received.ok()) {
        return;
      }
      if (received->command == "file_doc") {
        auto doc = received->args[0].abstract_value();
        docs_.push_back(std::static_pointer_cast<const Document>(doc));
        // The drawer index is guardian-private; only the token leaves.
        Token token = Seal(docs_.size() - 1);
        if (!received->reply_to.IsNull()) {
          Status st = Send(received->reply_to, "filed",
                           {Value::OfToken(token)});
          (void)st;
        }
      } else if (received->command == "fetch") {
        auto index = Unseal(received->args[0].token_value());
        if (!received->reply_to.IsNull()) {
          if (!index.ok() || *index >= docs_.size()) {
            Status st = Send(received->reply_to, "bad_token", {});
            (void)st;
          } else {
            Status st = Send(received->reply_to, "doc_is",
                             {Value::Abstract(docs_[*index])});
            (void)st;
          }
        }
      } else if (received->command == "take_index") {
        auto index = received->args[0].abstract_value();
        const auto* memory =
            dynamic_cast<const AssocMemoryObject*>(index.get());
        std::printf("  [cabinet %s] received index with %zu entries "
                    "(local rep: %s)\n",
                    name().c_str(), memory->Size(),
                    dynamic_cast<const TreeAssocMemory*>(memory) != nullptr
                        ? "tree"
                        : "hash table");
        if (!received->reply_to.IsNull()) {
          Status st = Send(received->reply_to, "indexed",
                           {Value::Int(static_cast<int64_t>(memory->Size()))});
          (void)st;
        }
      }
    }
  }

 private:
  std::vector<std::shared_ptr<const Document>> docs_;
};

}  // namespace

int main() {
  SystemConfig config;
  config.default_link.latency = Micros(600);
  System system(config);
  NodeRuntime& downtown = system.AddNode("downtown");
  NodeRuntime& uptown = system.AddNode("uptown");

  // Different representations at different nodes — decode rebuilds the
  // value in the *receiving* node's representation.
  (void)downtown.transmit_registry().Register(kDocumentTypeName,
                                              DocumentDecoder());
  (void)uptown.transmit_registry().Register(kDocumentTypeName,
                                            DocumentDecoder());
  (void)downtown.transmit_registry().Register(kAssocMemoryTypeName,
                                              HashAssocMemoryDecoder());
  (void)uptown.transmit_registry().Register(kAssocMemoryTypeName,
                                            TreeAssocMemoryDecoder());

  uptown.RegisterGuardianType("cabinet", MakeFactory<CabinetGuardian>());
  downtown.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  Guardian* desk = *downtown.Create<ShellGuardian>("shell", "desk", {});

  auto cabinet = CreateGuardianAt(*desk, uptown.PrimordialPort(), "cabinet",
                                  "records", {}, false, Millis(1000));
  if (!cabinet.ok()) {
    return 1;
  }

  // Mail a document uptown. Its local cache index (guardian-dependent
  // information) is deliberately not transmitted.
  auto memo = MakeDocument(
      "Primitives for Distributed Computing",
      {"Guardians consist of objects and processes.",
       "Processes in different guardians communicate only by messages."});
  memo->SetLocalCacheIndex(7);
  auto filed = RemoteCall(*desk, (*cabinet)[0], "file_doc",
                          {Value::Abstract(memo)}, CabinetReplyType(),
                          {Millis(1000), 1});
  if (!filed.ok() || filed->command != "filed") {
    return 1;
  }
  const Token receipt = filed->args[0].token_value();
  std::printf("filed memo; got %s\n", receipt.ToString().c_str());

  // Fetch it back via the token.
  auto fetched = RemoteCall(*desk, (*cabinet)[0], "fetch",
                            {Value::OfToken(receipt)}, CabinetReplyType(),
                            {Millis(1000), 1});
  if (fetched.ok() && fetched->command == "doc_is") {
    auto doc = std::static_pointer_cast<const Document>(
        fetched->args[0].abstract_value());
    std::printf("fetched \"%s\" (%zu words; cache index travelled? %s)\n",
                doc->title().c_str(), doc->WordCount(),
                doc->local_cache_index() == -1 ? "no" : "YES (bug)");
  }

  // A forged token is useless.
  Token forged = receipt;
  forged.handle += 1;
  auto denied = RemoteCall(*desk, (*cabinet)[0], "fetch",
                           {Value::OfToken(forged)}, CabinetReplyType(),
                           {Millis(1000), 1});
  std::printf("forged token: %s\n",
              denied.ok() ? denied->command.c_str() : "?");

  // Send the office index: built as a hash table here, it arrives as a
  // tree there — same abstract value, different representations.
  auto index = MakeHashAssocMemory();
  index->AddItem("memo-184", "drawer 3");
  index->AddItem("contract-12", "drawer 1");
  index->AddItem("blueprints", "flat file");
  std::printf("mailing index (local rep: hash table)...\n");
  auto indexed = RemoteCall(*desk, (*cabinet)[0], "take_index",
                            {Value::Abstract(index)}, CabinetReplyType(),
                            {Millis(1000), 1});
  std::printf("cabinet confirmed %lld entries\n",
              indexed.ok() && indexed->command == "indexed"
                  ? (long long)indexed->args[0].int_value()
                  : -1LL);

  // Some values must never leave the guardian: encode refuses, so the send
  // terminates before any bits reach the wire.
  Status refused = desk->Send((*cabinet)[0], "gossip",
                              {Value::Abstract(MakeSealedNote("the combo"))});
  std::printf("sending a sealed note: %s\n", refused.ToString().c_str());
  return 0;
}
