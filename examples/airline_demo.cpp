// The paper's running example end-to-end: the Figure 2 airline with two
// regions, clerk transactions with deferred cancels and undo (Figure 5),
// a region crash in the middle of the day, and idempotent retry after
// recovery.
//
//   $ ./airline_demo
#include <cstdio>

#include "src/airline/airline_system.h"
#include "src/airline/workload.h"
#include "src/sendprims/remote_call.h"

using namespace guardians;

namespace {

void PrintSummary(const char* label, const TransSummary& summary) {
  std::printf("%-28s started=%d completed=%d standing=%lld {", label,
              summary.started, summary.completed,
              static_cast<long long>(summary.reserves_standing));
  bool first = true;
  for (const auto& [outcome, count] : summary.outcomes) {
    std::printf("%s%s:%d", first ? "" : ", ", outcome.c_str(), count);
    first = false;
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  SystemConfig config;
  config.seed = 1979;
  config.default_link.latency = Micros(300);
  System system(config);

  AirlineParams params;
  params.regions = 2;
  params.flights_per_region = 3;
  params.capacity = 3;
  params.organization = FlightOrganization::kSerializer;
  params.reserve_timeout = Millis(400);
  auto topology = BuildAirline(system, params);
  if (!topology.ok()) {
    std::printf("build failed: %s\n", topology.status().ToString().c_str());
    return 1;
  }
  std::printf("airline up: %d regions, %d flights each\n", params.regions,
              params.flights_per_region);

  NodeRuntime& clerk_node = system.node(topology->region_nodes[0]);
  Guardian* shell = *clerk_node.Create<ShellGuardian>("shell", "clerks", {});

  // --- A normal transaction: reserve twice, change of mind once ----------
  {
    Clerk clerk(*shell, "ms-steele");
    std::vector<ClerkOp> ops = {
        {ClerkOp::Kind::kReserve, FlightNo(0, 1), DateString(2)},
        {ClerkOp::Kind::kReserve, FlightNo(1, 0), DateString(2)},
        {ClerkOp::Kind::kUndoLast, 0, ""},  // undone reserve -> cancel at end
        {ClerkOp::Kind::kReserve, FlightNo(1, 2), DateString(3)},
        {ClerkOp::Kind::kDone, 0, ""},
    };
    PrintSummary("normal transaction:",
                 clerk.RunTransaction(topology->user_ports[0], ops,
                                      Millis(2000)));
  }

  // --- Fill a flight to see full/wait_list ------------------------------
  {
    for (int i = 0; i < 5; ++i) {
      Clerk clerk(*shell, "group-" + std::to_string(i));
      std::vector<ClerkOp> ops = {
          {ClerkOp::Kind::kReserve, FlightNo(0, 0), DateString(0)},
          {ClerkOp::Kind::kDone, 0, ""},
      };
      TransSummary summary =
          clerk.RunTransaction(topology->user_ports[0], ops, Millis(2000));
      PrintSummary(("capacity probe " + std::to_string(i) + ":").c_str(),
                   summary);
    }
  }

  // --- Crash region 1 mid-transaction ------------------------------------
  NodeRuntime& region1 = system.node(topology->region_nodes[1]);
  std::printf("\n*** crashing node %s ***\n", region1.name().c_str());
  region1.Crash();
  {
    Clerk clerk(*shell, "mr-crash");
    std::vector<ClerkOp> ops = {
        {ClerkOp::Kind::kReserve, FlightNo(1, 1), DateString(5)},
        {ClerkOp::Kind::kDone, 0, ""},
    };
    // max_retries=0: show the raw cant_communicate.
    PrintSummary("during crash:",
                 clerk.RunTransaction(topology->user_ports[0], ops,
                                      Millis(1500), /*max_retries=*/0));
  }

  std::printf("*** restarting node %s ***\n", region1.name().c_str());
  Status restarted = region1.Restart();
  if (!restarted.ok()) {
    std::printf("restart failed: %s\n", restarted.ToString().c_str());
    return 1;
  }
  {
    Clerk clerk(*shell, "mr-crash");
    std::vector<ClerkOp> ops = {
        {ClerkOp::Kind::kReserve, FlightNo(1, 1), DateString(5)},
        {ClerkOp::Kind::kDone, 0, ""},
    };
    PrintSummary("retry after recovery:",
                 clerk.RunTransaction(topology->user_ports[0], ops,
                                      Millis(2000)));
  }

  // The manager audits the recovered flight.
  {
    RemoteCallOptions options;
    options.timeout = Millis(1000);
    auto reply = RemoteCall(
        *shell, topology->regional_ports[1], "list_passengers",
        {Value::Int(FlightNo(1, 1)), Value::Str(DateString(5)),
         Value::Str("manager")},
        ReservationReplyType(), options);
    if (reply.ok() && reply->command == "info") {
      std::printf("flight %lld %s passengers after recovery:",
                  static_cast<long long>(FlightNo(1, 1)),
                  DateString(5).c_str());
      for (const auto& passenger : reply->args[0].items()) {
        std::printf(" %s", passenger.string_value().c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("\n%s", system.Report().c_str());
  return 0;
}
