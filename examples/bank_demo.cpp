// Banking demo: accounts as guardians, exactly-once operations under
// retries, a cross-node transfer that is cut off mid-flight by a partition,
// and the recovery process finishing it — permanence of effect in action.
//
//   $ ./bank_demo
#include <cstdio>
#include <thread>

#include "src/bank/branch_guardian.h"
#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"

using namespace guardians;

namespace {

int64_t Balance(Guardian& shell, const PortName& account) {
  auto reply = RemoteCall(shell, account, "balance", {}, BankReplyType(),
                          {Millis(1000), 3});
  return reply.ok() && reply->command == "balance_is"
             ? reply->args[0].int_value()
             : -1;
}

}  // namespace

int main() {
  SystemConfig config;
  config.default_link.latency = Micros(400);
  System system(config);
  NodeRuntime& hq = system.AddNode("hq");
  NodeRuntime& suburb = system.AddNode("suburb");
  for (NodeRuntime* node : {&hq, &suburb}) {
    node->RegisterGuardianType(AccountGuardian::kTypeName,
                               MakeFactory<AccountGuardian>());
    node->RegisterGuardianType(BranchGuardian::kTypeName,
                               MakeFactory<BranchGuardian>());
    node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  }
  Guardian* teller = *hq.Create<ShellGuardian>("shell", "teller", {});

  auto alice = *hq.Create<AccountGuardian>(
      AccountGuardian::kTypeName, "alice",
      {Value::Str("alice"), Value::Int(200)}, /*persistent=*/true);
  auto bob = *suburb.Create<AccountGuardian>(
      AccountGuardian::kTypeName, "bob", {Value::Str("bob"), Value::Int(50)},
      /*persistent=*/true);
  auto branch = *hq.Create<BranchGuardian>(
      BranchGuardian::kTypeName, "branch",
      {Value::Int(300000), Value::Int(2)}, /*persistent=*/true);

  const PortName alice_port = alice->ProvidedPorts()[0];
  const PortName bob_port = bob->ProvidedPorts()[0];
  const PortName branch_port = branch->ProvidedPorts()[0];

  std::printf("opening balances: alice=%lld bob=%lld\n",
              (long long)Balance(*teller, alice_port),
              (long long)Balance(*teller, bob_port));

  // A clean transfer.
  auto done = RemoteCall(*teller, branch_port, "transfer",
                         {Value::OfPort(alice_port), Value::OfPort(bob_port),
                          Value::Int(75), Value::Str("rent-sept")},
                         BankReplyType(), {Millis(3000), 1});
  std::printf("transfer #1: %s\n",
              done.ok() ? done->command.c_str()
                        : done.status().ToString().c_str());
  std::printf("after #1: alice=%lld bob=%lld\n",
              (long long)Balance(*teller, alice_port),
              (long long)Balance(*teller, bob_port));

  // Retrying the same txid is harmless: the accounts deduplicate.
  done = RemoteCall(*teller, branch_port, "transfer",
                    {Value::OfPort(alice_port), Value::OfPort(bob_port),
                     Value::Int(75), Value::Str("rent-sept")},
                    BankReplyType(), {Millis(3000), 1});
  std::printf("transfer #1 retried: %s (balances unchanged: alice=%lld "
              "bob=%lld)\n",
              done.ok() ? done->command.c_str() : "?",
              (long long)Balance(*teller, alice_port),
              (long long)Balance(*teller, bob_port));

  // A transfer interrupted by a partition: withdrawn, deposit in doubt.
  std::printf("\n*** partitioning hq <-> suburb ***\n");
  system.network().SetPartitioned(hq.id(), suburb.id(), true);
  done = RemoteCall(*teller, branch_port, "transfer",
                    {Value::OfPort(alice_port), Value::OfPort(bob_port),
                     Value::Int(40), Value::Str("gift")},
                    BankReplyType(), {Millis(5000), 1});
  std::printf("transfer #2 during partition: %s — %s\n",
              done.ok() ? done->command.c_str() : "?",
              done.ok() && !done->args.empty()
                  ? done->args[0].string_value().c_str()
                  : "");
  std::printf("alice=%lld (debited), bob unreachable\n",
              (long long)Balance(*teller, alice_port));

  // Heal, crash the branch's node, restart: recovery finishes the deposit.
  system.network().SetPartitioned(hq.id(), suburb.id(), false);
  std::printf("*** healing partition; crashing and restarting hq ***\n");
  hq.Crash();
  if (!hq.Restart().ok()) {
    return 1;
  }
  Guardian* teller2 = *hq.Create<ShellGuardian>("shell", "teller2", {});
  for (int i = 0; i < 100; ++i) {
    if (Balance(*teller2, bob_port) == 50 + 75 + 40) {
      break;
    }
    std::this_thread::sleep_for(Millis(20));
  }
  std::printf("after recovery: alice=%lld bob=%lld (money conserved: %s)\n",
              (long long)Balance(*teller2, alice_port),
              (long long)Balance(*teller2, bob_port),
              Balance(*teller2, alice_port) +
                          Balance(*teller2, bob_port) ==
                      250
                  ? "yes"
                  : "NO");
  std::printf("\n%s", system.Report().c_str());
  return 0;
}
