// A day at the office: the services layer working together.
//
//  - a CatalogGuardian bootstraps names (port names are the only global
//    names; everything else is found by asking the catalog);
//  - a CabinetGuardian files documents durably and hands out sealed tokens;
//  - a SpoolerGuardian queues print jobs on the shared printer;
//  - the records node crashes over lunch and recovers: the cabinet's
//    documents survive, the print queue (deliberately volatile) does not,
//    and stale tokens are refreshed through find_title.
//
//   $ ./office_day
#include <cstdio>
#include <thread>

#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"
#include "src/services/cabinet.h"
#include "src/services/catalog.h"
#include "src/services/spooler.h"

using namespace guardians;

namespace {

RemoteReply Call(Guardian& from, const PortName& to,
                 const std::string& command, ValueList args,
                 const PortType& reply_type) {
  auto reply = RemoteCall(from, to, command, std::move(args), reply_type,
                          {Millis(1000), 3});
  if (!reply.ok()) {
    std::printf("  (call %s failed: %s)\n", command.c_str(),
                reply.status().ToString().c_str());
    return {};
  }
  return *reply;
}

}  // namespace

int main() {
  SystemConfig config;
  config.default_link.latency = Micros(500);
  System system(config);
  NodeRuntime& records = system.AddNode("records-room");
  NodeRuntime& desk_node = system.AddNode("front-desk");

  records.RegisterGuardianType(CatalogGuardian::kTypeName,
                               MakeFactory<CatalogGuardian>());
  records.RegisterGuardianType(CabinetGuardian::kTypeName,
                               MakeFactory<CabinetGuardian>());
  records.RegisterGuardianType(SpoolerGuardian::kTypeName,
                               MakeFactory<SpoolerGuardian>());
  desk_node.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  (void)desk_node.transmit_registry().Register(kDocumentTypeName,
                                               DocumentDecoder());

  // Boot the records room and register everything in the catalog.
  auto catalog = *records.Create<CatalogGuardian>(
      CatalogGuardian::kTypeName, "catalog", {}, /*persistent=*/true);
  const PortName catalog_port = catalog->ProvidedPorts()[0];
  auto cabinet = *records.Create<CabinetGuardian>(
      CabinetGuardian::kTypeName, "cabinet", {}, /*persistent=*/true);
  auto spooler = *records.Create<SpoolerGuardian>(
      SpoolerGuardian::kTypeName, "printer", {Value::Int(500)},
      /*persistent=*/false);

  Guardian* desk = *desk_node.Create<ShellGuardian>("shell", "desk", {});
  (void)CatalogRegister(*desk, catalog_port, "office/cabinet",
                        cabinet->ProvidedPorts()[0], Millis(1000));
  (void)CatalogRegister(*desk, catalog_port, "office/printer",
                        spooler->ProvidedPorts()[0], Millis(1000));
  std::printf("catalog holds %zu names\n", catalog->size());

  // Morning: find the cabinet by name, file the quarterly report.
  auto cabinet_port =
      CatalogLookup(*desk, catalog_port, "office/cabinet", Millis(1000));
  auto printer_port =
      CatalogLookup(*desk, catalog_port, "office/printer", Millis(1000));
  if (!cabinet_port.ok() || !printer_port.ok()) {
    return 1;
  }

  auto report = MakeDocument(
      "Q3 report", {"Reservations are up twelve percent.",
                    "The waiting lists for flight 1002 keep growing."});
  auto filed = Call(*desk, *cabinet_port, "file_doc",
                    {Value::Abstract(report)}, CabinetReplyType());
  const Token receipt = filed.args[0].token_value();
  std::printf("filed \"Q3 report\"; receipt %s\n",
              receipt.ToString().c_str());

  // Print two copies.
  auto job1 = Call(*desk, *printer_port, "submit",
                   {Value::Abstract(report)}, SpoolerReplyType());
  auto job2 = Call(*desk, *printer_port, "submit",
                   {Value::Abstract(report)}, SpoolerReplyType());
  std::printf("queued print jobs %lld and %lld\n",
              (long long)job1.args[0].int_value(),
              (long long)job2.args[0].int_value());

  // Change of mind about the second copy.
  auto canceled = Call(*desk, *printer_port, "cancel_job",
                       {Value::Int(job2.args[0].int_value())},
                       SpoolerReplyType());
  std::printf("cancel second copy: %s\n", canceled.command.c_str());

  // Lunch: the records room loses power.
  std::printf("\n*** records-room crashes ***\n");
  records.Crash();
  if (!records.Restart().ok()) {
    return 1;
  }
  std::printf("*** records-room restarted ***\n");

  // The catalog recovered its names...
  auto after = CatalogLookup(*desk, catalog_port, "office/cabinet",
                             Millis(2000));
  std::printf("catalog still knows office/cabinet: %s\n",
              after.ok() ? "yes" : "no");
  // ...the cabinet recovered its documents, but the old receipt is stale:
  auto stale = Call(*desk, *cabinet_port, "fetch",
                    {Value::OfToken(receipt)}, CabinetReplyType());
  std::printf("old receipt after crash: %s\n", stale.command.c_str());
  auto fresh = Call(*desk, *cabinet_port, "find_title",
                    {Value::Str("Q3 report")}, CabinetReplyType());
  auto doc = Call(*desk, *cabinet_port, "fetch",
                  {Value::OfToken(fresh.args[0].token_value())},
                  CabinetReplyType());
  if (doc.command == "doc_is") {
    auto recovered = std::static_pointer_cast<const Document>(
        doc.args[0].abstract_value());
    std::printf("recovered \"%s\" (%zu words) via find_title\n",
                recovered->title().c_str(), recovered->WordCount());
  }
  // ...and the print queue was deliberately forgotten (like Figure 5's
  // transactions): resubmit.
  auto lost = Call(*desk, *printer_port, "job_status",
                   {Value::Int(job1.args[0].int_value())},
                   SpoolerReplyType());
  std::printf("pre-crash print job after restart: %s\n",
              lost.command.c_str());
  return 0;
}
