// Quickstart: two nodes, remote guardian creation through the primordial
// guardian, no-wait send + receive with timeout, and the system failure
// message — the paper's core primitives in ~100 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"

using namespace guardians;

namespace {

// A greeter guardian. Its "header":
//   greeter = port { greet(string) replies(greeting) }
PortType GreeterPortType() {
  return PortType("greeter", {MessageSig{"greet",
                                         {ArgType::Of(TypeTag::kString)},
                                         {"greeting"}}});
}

PortType GreeterReplyType() {
  return PortType("greeter_reply",
                  {MessageSig{"greeting",
                              {ArgType::Of(TypeTag::kString)}, {}}});
}

class GreeterGuardian : public Guardian {
 public:
  Status Setup(const ValueList& args) override {
    (void)args;
    AddPort(GreeterPortType(), Port::kDefaultCapacity, /*provided=*/true);
    return OkStatus();
  }

  void Main() override {
    // receive on <port> ... when greet(who) replyto r: send greeting to r
    for (;;) {
      auto received = Receive(port(0), Micros::max());
      if (!received.ok()) {
        return;  // node went down
      }
      if (received->command == "greet" && !received->reply_to.IsNull()) {
        Status st = Send(received->reply_to, "greeting",
                         {Value::Str("hello, " +
                                     received->args[0].string_value())});
        (void)st;
      }
    }
  }
};

}  // namespace

int main() {
  // A two-node system joined by a 500us link.
  SystemConfig config;
  config.default_link.latency = Micros(500);
  System system(config);
  NodeRuntime& node_a = system.AddNode("office-a");
  NodeRuntime& node_b = system.AddNode("office-b");

  // The owner of node B decides which guardian programs may run there.
  node_b.RegisterGuardianType("greeter", MakeFactory<GreeterGuardian>());
  node_a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());

  // Everything is done *by a guardian at a node* — there is no thin air.
  Guardian* me = *node_a.Create<ShellGuardian>("shell", "driver", {});

  // Create a greeter at node B by messaging B's primordial guardian.
  auto ports = CreateGuardianAt(*me, node_b.PrimordialPort(), "greeter",
                                "greeter-1", {}, /*persistent=*/false,
                                Millis(1000));
  if (!ports.ok()) {
    std::printf("creation failed: %s\n", ports.status().ToString().c_str());
    return 1;
  }
  std::printf("created greeter at %s\n", (*ports)[0].ToString().c_str());

  // Remote-invocation pattern: request + reply port + timeout.
  auto reply = RemoteCall(*me, (*ports)[0], "greet", {Value::Str("1979")},
                          GreeterReplyType(), {Millis(1000), 1});
  if (reply.ok()) {
    std::printf("reply: %s(%s)\n", reply->command.c_str(),
                reply->args[0].string_value().c_str());
  }

  // The type checker refuses an ill-typed send before any bits move.
  Status bad = me->Send((*ports)[0], "greet", {Value::Int(42)});
  std::printf("ill-typed send: %s\n", bad.ToString().c_str());

  // Sends to dead ports are thrown away; with a reply port, the *system*
  // reports the discard.
  PortName bogus = (*ports)[0];
  bogus.guardian = 4242;
  auto failure = RemoteCall(*me, bogus, "greet", {Value::Str("x")},
                            GreeterReplyType(), {Millis(1000), 1});
  if (failure.ok()) {
    std::printf("system says: %s(%s)\n", failure->command.c_str(),
                failure->args[0].string_value().c_str());
  }
  return 0;
}
