#!/usr/bin/env bash
# Tier-1 gate: build + full test suite, then the ThreadSanitizer preset
# over the concurrency-sensitive suites (ctest label "tsan" — including
# test_dedup, whose at-most-once table is hit concurrently by delivery
# workers and replying guardian threads). Optionally
# (--asan) the AddressSanitizer preset over the full suite — the fault
# layer's crash/restart churn makes lifetime bugs likely, so the asan
# stage is the cheap way to catch them.
#
# Usage: scripts/ci.sh [--skip-tsan] [--asan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
RUN_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --asan) RUN_ASAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "==> tier-1: configure + build (preset: default)"
cmake --preset default
cmake --build --preset default -j "$JOBS"

echo "==> tier-1: ctest (full suite)"
ctest --preset default -j "$JOBS"

if [[ "$SKIP_TSAN" -eq 1 ]]; then
  echo "==> tsan: skipped (--skip-tsan)"
else
  echo "==> tsan: configure + build (preset: tsan)"
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS"

  echo "==> tsan: ctest (label: tsan)"
  ctest --preset tsan
fi

if [[ "$RUN_ASAN" -eq 1 ]]; then
  echo "==> asan: configure + build (preset: asan)"
  cmake --preset asan
  cmake --build --preset asan -j "$JOBS"

  echo "==> asan: ctest (full suite)"
  ctest --preset asan -j "$JOBS"
fi

echo "==> ci: all green"
