#!/usr/bin/env bash
# Tier-1 gate: build + full test suite, then the ThreadSanitizer preset
# over the concurrency-sensitive suites (ctest label "tsan").
#
# Usage: scripts/ci.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "==> tier-1: configure + build (preset: default)"
cmake --preset default
cmake --build --preset default -j "$JOBS"

echo "==> tier-1: ctest (full suite)"
ctest --preset default -j "$JOBS"

if [[ "$SKIP_TSAN" -eq 1 ]]; then
  echo "==> tsan: skipped (--skip-tsan)"
  exit 0
fi

echo "==> tsan: configure + build (preset: tsan)"
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"

echo "==> tsan: ctest (label: tsan)"
ctest --preset tsan

echo "==> ci: all green"
