#!/usr/bin/env bash
# Tier-1 gate: build + full test suite, then the ThreadSanitizer preset
# over the concurrency-sensitive suites (ctest label "tsan" — including
# test_dedup, whose at-most-once table is hit concurrently by delivery
# workers and replying guardian threads). Optionally
# (--asan) the AddressSanitizer preset over the full suite — the fault
# layer's crash/restart churn makes lifetime bugs likely, so the asan
# stage is the cheap way to catch them.
#
# The bench stage runs the self-checking benches (exit 1 on a property
# violation, not just a slow run): bench_saturation verifies the flow
# control acceptance criteria (goodput retention and drop collapse at 2x
# saturation, shard-determinism) and leaves BENCH_flowctl.json in the
# build tree; bench_batching verifies the batched-drain acceptance
# criteria (>= 1.4x delivered-messages/sec at batch_max 64 vs 1 on 4
# shards, outcome counts bit-identical across batch sizes) and leaves
# BENCH_batching.json; bench_fragmentation verifies the zero-copy wire
# path (>= 30% reduction in bytes copied per delivered fragmented message
# vs the legacy copying model, via BufferStats/buffer.bytes_copied) and
# leaves BENCH_wire.json; bench_encode_decode verifies the codec copy
# budget (zero buffer-layer copies per round trip, linear wire size) and
# leaves BENCH_wire_codec.json; bench_overload verifies the deadline
# acceptance criteria (zero expired executions, goodput retention at 2x
# offered load, shed-count grid determinism) and leaves
# BENCH_deadline.json, re-checked from the JSON by a python gate. All
# tracked cross-PR. Skippable with --skip-bench.
#
# A grep lint runs before everything: src/ and tests/ must read time only
# through the §15 ClockSource seam, never raw std::chrono clocks.
#
# The chaos stage runs the deterministic chaos harness (bench_chaos: three
# pinned seeds of composed faults — partitions, one-way cuts, campus cuts,
# link storms, crashes, store failures, dup replays — with the global
# invariant suite checked every epoch; any violation dumps the seed +
# schedule and exits 1) and leaves BENCH_chaos.json. Each seed is bounded
# by the engine's settle deadline, so the stage has a hard wall-time
# ceiling (`timeout 300` on top as a belt). The stage then asserts the
# wall-clock seeds' outcome counts match the pinned goldens below — the
# virtual-clock plumbing must leave the default wall build bit-for-bit
# unchanged, and these counts are the canary. Skippable with --skip-chaos.
#
# --soak N adds N simulated-time seeds to the chaos stage (clock skew,
# drift and reordering storms included). Virtual time makes each soak
# seed cost ~0.1s wall, so a hundred-seed soak is a coffee break, not an
# overnighter; per-seed pass/fail lands in BENCH_chaos.json.
#
# Usage: scripts/ci.sh [--skip-tsan] [--skip-bench] [--skip-chaos]
#        [--soak N] [--asan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_BENCH=0
SKIP_CHAOS=0
RUN_ASAN=0
SOAK=0
EXPECT_SOAK_VALUE=0
for arg in "$@"; do
  if [[ "$EXPECT_SOAK_VALUE" -eq 1 ]]; then
    SOAK="$arg"
    EXPECT_SOAK_VALUE=0
    continue
  fi
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-bench) SKIP_BENCH=1 ;;
    --skip-chaos) SKIP_CHAOS=1 ;;
    --soak) EXPECT_SOAK_VALUE=1 ;;
    --soak=*) SOAK="${arg#--soak=}" ;;
    --asan) RUN_ASAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
if [[ "$EXPECT_SOAK_VALUE" -eq 1 ]]; then
  echo "--soak requires a seed count" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "==> lint: no raw std::chrono clocks outside src/common/clock"
# The §15 pluggable-clock contract: every time read in the stack goes
# through ClockSource so simulated time and per-node skew reach all of it.
# A raw steady_clock/system_clock call in src/ silently escapes the
# virtual-time world (benches may self-time their own harness cost, so
# bench/ is exempt; clock.{h,cc} is where the wall clock legitimately
# lives).
if grep -rn "std::chrono::steady_clock\|std::chrono::system_clock" \
     --include='*.h' --include='*.cc' src/ tests/ \
     | grep -v '^src/common/clock\.\(h\|cc\):'; then
  echo "lint FAIL: raw std::chrono clock usage outside src/common/clock.{h,cc}" >&2
  exit 1
fi
echo "lint ok: src/ and tests/ read time only through ClockSource"

echo "==> tier-1: configure + build (preset: default)"
cmake --preset default
cmake --build --preset default -j "$JOBS"

echo "==> tier-1: ctest (full suite)"
ctest --preset default -j "$JOBS"

if [[ "$SKIP_BENCH" -eq 1 ]]; then
  echo "==> bench: skipped (--skip-bench)"
else
  echo "==> bench: self-checking benches (bench_saturation)"
  (cd build && ./bench/bench_saturation)

  echo "==> bench: self-checking benches (bench_batching)"
  (cd build && ./bench/bench_batching)

  echo "==> bench: self-checking benches (bench_fragmentation)"
  (cd build && ./bench/bench_fragmentation)

  echo "==> bench: self-checking benches (bench_encode_decode)"
  (cd build && ./bench/bench_encode_decode)

  echo "==> bench: self-checking benches (bench_overload)"
  (cd build && ./bench/bench_overload)

  echo "==> bench: BENCH_deadline.json acceptance fields"
  # bench_overload exits nonzero on any violated property; this re-checks
  # the recorded JSON so a silently-empty file cannot pass the gate.
  python3 - <<'PYEOF'
import json, sys
records = {r["name"]: r["fields"]
           for r in json.load(open("build/BENCH_deadline.json"))["records"]}
bad = []
shed = records.get("deadline/overload_2x_shed")
if shed is None:
    bad.append("deadline/overload_2x_shed missing")
elif shed["doomed_executed"] != 0:
    bad.append(f"expired executions = {shed['doomed_executed']} (want 0)")
ret = records.get("deadline/goodput_retention_2x")
if ret is None:
    bad.append("deadline/goodput_retention_2x missing")
elif ret["ratio"] < 0.9:
    bad.append(f"goodput retention at 2x = {ret['ratio']:.2f} (want >= 0.9)")
det = records.get("deadline/determinism")
if det is None or det["identical"] != 1:
    bad.append("shed counts not bit-identical across the delivery grid")
if bad:
    print("DEADLINE acceptance failed:\n  " + "\n  ".join(bad))
    sys.exit(1)
print("DEADLINE acceptance holds: no expired effects, goodput retained, "
      "grid-deterministic")
PYEOF
fi

if [[ "$SKIP_CHAOS" -eq 1 ]]; then
  echo "==> chaos: skipped (--skip-chaos)"
else
  if [[ "$SOAK" -gt 0 ]]; then
    echo "==> chaos: deterministic fault-schedule gate (3 pinned seeds + $SOAK sim-time soak seeds)"
    (cd build && timeout $((300 + SOAK)) ./bench/bench_chaos --soak "$SOAK")
  else
    echo "==> chaos: deterministic fault-schedule gate (bench_chaos, 3 seeds)"
    (cd build && timeout 300 ./bench/bench_chaos)
  fi

  echo "==> chaos: pinned wall-clock outcome counts"
  # The unsupervised wall-clock seeds are count-deterministic by contract;
  # a drift here means the default (wall) build changed behavior. The
  # supervised seed 225 is timing-dependent, so only its schedule-derived
  # fields could be pinned — leave it to the invariant suite.
  python3 - <<'PYEOF'
import json, sys
golden = {
    "chaos/seed:114": {"events": 16, "crashes": 1, "dup_replays": 2,
                       "ops_acked": 26},
    "chaos/seed:163": {"events": 13, "crashes": 2, "dup_replays": 1,
                       "ops_acked": 29},
}
records = {r["name"]: r["fields"]
           for r in json.load(open("build/BENCH_chaos.json"))["records"]}
bad = []
for name, want in golden.items():
    got = records.get(name)
    if got is None:
        bad.append(f"{name}: missing from BENCH_chaos.json")
        continue
    for key, value in want.items():
        if int(got.get(key, -1)) != value:
            bad.append(f"{name}: {key} = {int(got.get(key, -1))}, pinned {value}")
if bad:
    print("pinned chaos counts drifted:\n  " + "\n  ".join(bad))
    sys.exit(1)
print("pinned chaos counts hold: " + ", ".join(sorted(golden)))
PYEOF
fi

if [[ "$SKIP_TSAN" -eq 1 ]]; then
  echo "==> tsan: skipped (--skip-tsan)"
else
  echo "==> tsan: configure + build (preset: tsan)"
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS"

  echo "==> tsan: ctest (label: tsan)"
  ctest --preset tsan
fi

if [[ "$RUN_ASAN" -eq 1 ]]; then
  echo "==> asan: configure + build (preset: asan)"
  cmake --preset asan
  cmake --build --preset asan -j "$JOBS"

  echo "==> asan: ctest (full suite)"
  ctest --preset asan -j "$JOBS"
fi

echo "==> ci: all green"
